"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

#: Every registered subcommand; the smoke test below fails if a new one
#: is added without joining this list.
ALL_COMMANDS = [
    "goals", "figure3", "response", "seeks", "table1", "table3", "plan",
    "bench", "lifecycle", "campaign", "crash", "nemesis", "traffic",
    "failslow", "corruption", "profile",
]


class TestHelpSmoke:
    def test_command_list_is_current(self):
        import argparse

        parser = build_parser()
        subparsers = next(
            a for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        )
        assert sorted(subparsers.choices) == sorted(ALL_COMMANDS)

    @pytest.mark.parametrize("command", ALL_COMMANDS)
    def test_help_exits_zero(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0
        assert "usage" in capsys.readouterr().out

    def test_top_level_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for command in ALL_COMMANDS:
            assert command in out


class TestUnwritableOut:
    """--out through a regular file fails with one clean line, not a
    traceback (NotADirectoryError fires even for root, unlike a bare
    permission bit)."""

    @pytest.mark.parametrize(
        "args",
        [
            ["lifecycle", "--quick", "--no-cache", "--workers", "1"],
            ["campaign", "--quick", "--no-cache", "--workers", "1"],
            ["crash", "--quick", "--no-cache", "--workers", "1"],
            ["nemesis", "--trial", "0", "--no-cache", "--workers", "1"],
            ["traffic", "--quick", "--no-cache", "--workers", "1"],
            ["failslow", "--quick", "--no-cache", "--workers", "1"],
            ["corruption", "--quick", "--no-cache", "--workers", "1"],
        ],
        ids=[
            "lifecycle", "campaign", "crash", "nemesis", "traffic",
            "failslow", "corruption",
        ],
    )
    def test_out_through_regular_file(self, args, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        target = blocker / "report.json"
        code = main([*args, "--out", str(target)])
        captured = capsys.readouterr()
        assert code == 1
        assert "error: cannot write report" in captured.err
        assert "Traceback" not in captured.err


class TestGoals:
    def test_default(self, capsys):
        assert main(["goals"]) == 0
        out = capsys.readouterr().out
        assert "PDDL" in out and "#8" in out

    def test_subset(self, capsys):
        assert main(["goals", "--layouts", "raid5"]) == 0
        out = capsys.readouterr().out
        assert "RAID 5" in out and "PDDL" not in out


class TestFigure3:
    def test_custom_sizes(self, capsys):
        assert main(["figure3", "--sizes", "8,96", "--layouts", "pddl",
                     "raid5"]) == 0
        out = capsys.readouterr().out
        assert "96KB" in out and "ffread" in out


class TestResponse:
    def test_single_point(self, capsys):
        code = main(
            [
                "response", "--size", "8", "--clients", "2",
                "--samples", "60", "--no-stopping-rule",
                "--layouts", "raid5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RAID 5" in out and "8KB reads" in out

    def test_degraded_write(self, capsys):
        code = main(
            [
                "response", "--size", "48", "--write", "--mode", "f1",
                "--clients", "2", "--samples", "50",
                "--no-stopping-rule", "--layouts", "pddl",
            ]
        )
        assert code == 0
        assert "48KB writes" in capsys.readouterr().out


class TestSeeks:
    def test_mix_table(self, capsys):
        code = main(
            ["seeks", "--sizes", "8", "--samples", "40",
             "--layouts", "pddl"]
        )
        assert code == 0
        assert "non-local" in capsys.readouterr().out


class TestTables:
    def test_table1_small(self, capsys):
        code = main(
            ["table1", "--widths", "5", "--stripes", "1,2",
             "--restarts", "5", "--max-steps", "500"]
        )
        assert code == 0
        assert "k=5" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(["table3", "--iterations", "1000"]) == 0
        out = capsys.readouterr().out
        assert "pddl" in out and "sparing=yes" in out


class TestBench:
    def test_quick_sweep_then_cache_replay(self, capsys, tmp_path):
        args = [
            "bench", "--quick", "--workers", "2",
            "--cache-dir", str(tmp_path), "--layouts", "pddl", "raid5",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "8KB reads" in out and "48KB reads" in out
        assert "8 points: 8 simulated, 0 from cache" in out
        assert "instrumentation:" in out
        # Replay: every point from cache, nothing simulated.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "8 points: 0 simulated, 8 from cache" in out

    def test_no_cache(self, capsys):
        assert main(
            ["bench", "--quick", "--no-cache", "--workers", "1",
             "--layouts", "pddl"]
        ) == 0
        out = capsys.readouterr().out
        assert "cache dir" not in out
        assert "4 points: 4 simulated" in out


class TestLifecycle:
    def test_quick_run_then_cache_replay(self, capsys, tmp_path):
        out_file = tmp_path / "BENCH_lifecycle.json"
        args = [
            "lifecycle", "--quick", "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out_file),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "-> post-reconstruction" in out
        assert "rebuild vs load [pddl]" in out
        assert "2 runs: 2 simulated, 0 from cache" in out
        import json

        summary = json.loads(out_file.read_text())
        assert {run["layout"] for run in summary["runs"]} == {
            "pddl", "parity-declustering",
        }
        for run in summary["runs"]:
            assert run["complete"]
            assert run["rebuild_duration_ms"] > 0
            assert set(run["mode_means_ms"]) == {
                "fault-free", "degraded", "reconstruction",
                "post-reconstruction",
            }
        # Replay: both runs from cache, nothing simulated.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "2 runs: 0 simulated, 2 from cache" in out

    def test_custom_sweep_no_cache(self, capsys):
        assert main(
            ["lifecycle", "--no-cache", "--layouts", "pddl",
             "--clients", "2", "--fault-time", "200", "--dwell", "100",
             "--rebuild-rows", "13", "--post-samples", "15",
             "--samples", "400", "--workers", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "cache dir" not in out
        assert "1 runs: 1 simulated" in out


class TestCampaign:
    def test_quick_run_then_cache_replay(self, capsys, tmp_path):
        out_file = tmp_path / "BENCH_campaign.json"
        args = [
            "campaign", "--quick", "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out_file),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "loss probability" in out
        assert "24 trials: 24 simulated" in out
        import json

        payload = json.loads(out_file.read_text())
        assert payload["bench"] == "campaign"
        assert payload["summary"]["trials"] == 24
        assert len(payload["trials"]) == 24
        for trial in payload["trials"]:
            assert trial["classification"] in ("survived", "lost")
        # Replay: every trial served from cache, byte-identical report.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "24 trials: 0 simulated, 24 from cache" in out
        assert json.loads(out_file.read_text()) == payload

    def test_checkpoint_resume(self, capsys, tmp_path):
        checkpoint = tmp_path / "run.jsonl"
        args = [
            "campaign", "--quick", "--no-cache", "--workers", "1",
            "--checkpoint", str(checkpoint),
            # Explicit --out: the default would clobber the committed
            # BENCH_campaign.json at the repo root mid-test-run.
            "--out", str(tmp_path / "BENCH_campaign.json"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "24 from checkpoint" in out


class TestCrash:
    def test_quick_run_then_cache_replay(self, capsys, tmp_path):
        out_file = tmp_path / "BENCH_crash.json"
        args = [
            "crash", "--quick", "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out_file),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "resync: journal" in out
        assert "0 silent corruption event(s)" in out
        assert "4 trials: 4 simulated" in out

        payload = json.loads(out_file.read_text())
        assert payload["bench"] == "crash"
        assert payload["summary"]["corruption_events"] == 0
        # The acceptance bar: journal-on resync measurably beats the
        # full-sweep baseline.
        assert payload["summary"]["resync_speedup"] > 2.0
        for trial in payload["trials"]:
            assert trial["classification"] == "recovered"
            assert trial["resync_ms"] > 0

        # Replay: every trial from cache, byte-identical report.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "4 trials: 0 simulated, 4 from cache" in out
        assert json.loads(out_file.read_text()) == payload


class TestNemesis:
    def test_quick_run_then_cache_replay(self, capsys, tmp_path):
        out_file = tmp_path / "BENCH_nemesis.json"
        args = [
            "nemesis", "--quick", "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out_file),
            "--failures-out", "",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "SILENT CORRUPTION 0" in out
        assert "24 trials: 24 simulated" in out

        payload = json.loads(out_file.read_text())
        assert payload["bench"] == "nemesis"
        assert payload["summary"]["silent_corruption"] == 0
        assert payload["summary"]["trials"] == 24
        assert len(payload["trials"]) == 24
        assert "source_version" in payload["provenance"]
        for trial in payload["trials"]:
            assert trial["classification"] in ("survived", "data_loss")
            assert trial["corruption_events"] == 0

        # Replay: every trial from cache, byte-identical modulo the
        # provenance stamp (identical here — same working tree).
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "24 trials: 0 simulated, 24 from cache" in out
        assert json.loads(out_file.read_text()) == payload

    def test_single_trial_repro(self, capsys, tmp_path):
        out_file = tmp_path / "BENCH_nemesis.json"
        assert main(
            ["nemesis", "--trial", "5", "--no-cache", "--workers", "1",
             "--out", str(out_file), "--failures-out", ""]
        ) == 0
        payload = json.loads(out_file.read_text())
        assert payload["config"]["start"] == 5
        assert payload["summary"]["trials"] == 1
        assert payload["trials"][0]["trial"] == 5


class TestTrafficCommand:
    def test_quick_run_then_cache_replay(self, capsys, tmp_path):
        out_file = tmp_path / "BENCH_traffic.json"
        args = [
            "traffic", "--quick", "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out_file),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "8 trials: 8 simulated" in out
        assert "knee[raid5]" in out

        payload = json.loads(out_file.read_text())
        assert payload["bench"] == "traffic"
        assert payload["summary"]["trials"] == 8
        assert len(payload["trials"]) == 8
        assert "source_version" in payload["provenance"]
        for trial in payload["trials"]:
            assert trial["completed"] + trial["shed"] == trial["offered"]
            assert trial["phase"] in ("ff", "rebuild")
        # The quick sweep already shows the headline divergence: a
        # mid-rebuild raid5 overloads where the fault-free array holds.
        assert any(
            d["layout"] == "raid5" for d in payload["summary"]["divergence"]
        )

        # Replay: every trial from cache, byte-identical.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "8 trials: 0 simulated, 8 from cache" in out
        assert json.loads(out_file.read_text()) == payload

    def test_report_passes_the_compare_gate(self, capsys, tmp_path):
        out_file = tmp_path / "BENCH_traffic.json"
        assert main(
            ["traffic", "--quick", "--no-cache", "--workers", "1",
             "--out", str(out_file)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["bench", "--compare", "--baseline", str(out_file)]
        ) == 0
        assert "OK" in capsys.readouterr().out


class TestFailslowCommand:
    def test_quick_run_then_cache_replay(self, capsys, tmp_path):
        out_file = tmp_path / "BENCH_failslow.json"
        args = [
            "failslow", "--quick", "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out_file),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "8 trials: 8 simulated" in out
        assert "hedge[pddl]" in out
        assert "aimd[pddl]" in out

        payload = json.loads(out_file.read_text())
        assert payload["bench"] == "failslow"
        assert payload["summary"]["trials"] == 8
        assert len(payload["trials"]) == 8
        assert "source_version" in payload["provenance"]
        for trial in payload["trials"]:
            assert trial["completed"] + trial["shed"] == trial["offered"]
            hedged = trial["defense"] in ("hedge", "both")
            assert (trial["hedging"] is not None) == hedged

        # Replay: every trial from cache, byte-identical.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "8 trials: 0 simulated, 8 from cache" in out
        assert json.loads(out_file.read_text()) == payload

    def test_report_passes_the_compare_gate(self, capsys, tmp_path):
        out_file = tmp_path / "BENCH_failslow.json"
        assert main(
            ["failslow", "--quick", "--no-cache", "--workers", "1",
             "--out", str(out_file)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["bench", "--compare", "--baseline", str(out_file)]
        ) == 0
        assert "OK" in capsys.readouterr().out


class TestCorruptionCommand:
    def test_quick_run_then_cache_replay(self, capsys, tmp_path):
        out_file = tmp_path / "BENCH_corruption.json"
        args = [
            "corruption", "--quick", "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out_file),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "24 trials: 24 simulated" in out
        assert "silent by defense:" in out
        assert "defended tiers served 0 silent corruption event(s)" in out
        assert "audit[pddl/audit]:" in out

        payload = json.loads(out_file.read_text())
        assert payload["bench"] == "corruption"
        assert payload["summary"]["trials"] == 24
        assert len(payload["trials"]) == 24
        assert "source_version" in payload["provenance"]
        assert payload["summary"]["defended_silent_total"] == 0
        assert payload["summary"]["undefended_silent_total"] > 0
        for trial in payload["trials"]:
            assert trial["completed"] + trial["shed"] == trial["offered"]
            if trial["defense"] == "none":
                assert trial["checksum"] is None
            else:
                assert trial["corruption"]["silent_total"] == 0

        # Replay: every trial from cache, byte-identical.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "24 trials: 0 simulated, 24 from cache" in out
        assert json.loads(out_file.read_text()) == payload

    def test_report_passes_the_compare_gate(self, capsys, tmp_path):
        out_file = tmp_path / "BENCH_corruption.json"
        assert main(
            ["corruption", "--quick", "--no-cache", "--workers", "1",
             "--out", str(out_file)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["bench", "--compare", "--baseline", str(out_file)]
        ) == 0
        assert "OK" in capsys.readouterr().out


class TestBenchCompare:
    @pytest.fixture()
    def nemesis_report(self, tmp_path, capsys):
        out_file = tmp_path / "BENCH_nemesis.json"
        assert main(
            ["nemesis", "--trials", "4", "--no-cache", "--workers", "1",
             "--out", str(out_file), "--failures-out", ""]
        ) == 0
        capsys.readouterr()
        return out_file

    def test_self_check_passes(self, nemesis_report, capsys):
        assert main(
            ["bench", "--compare", "--baseline", str(nemesis_report)]
        ) == 0
        assert "bench-compare: OK" in capsys.readouterr().out

    def test_perturbed_report_fails(self, nemesis_report, tmp_path, capsys):
        payload = json.loads(nemesis_report.read_text())
        payload["summary"]["survived"] += 1
        perturbed = tmp_path / "BENCH_perturbed.json"
        perturbed.write_text(json.dumps(payload))
        code = main(
            ["bench", "--compare", "--baseline", str(nemesis_report),
             "--candidate", str(perturbed)]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "summary.survived" in captured.out
        assert "bench-compare: FAIL" in captured.out

    def test_exact_ignores_version_stamp(
        self, nemesis_report, tmp_path, capsys
    ):
        payload = json.loads(nemesis_report.read_text())
        payload["provenance"]["source_version"] = "elsewhere-123"
        other = tmp_path / "BENCH_other.json"
        other.write_text(json.dumps(payload))
        assert main(
            ["bench", "--compare", "--exact",
             "--baseline", str(nemesis_report), "--candidate", str(other)]
        ) == 0
        assert "bench-compare: OK" in capsys.readouterr().out

    def test_missing_reports_error(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--compare"]) == 1
        assert "no BENCH_*.json" in capsys.readouterr().err


class TestCampaignOracle:
    def test_oracle_enabled_campaign_reports_zero_corruption(
        self, capsys, tmp_path
    ):
        out_file = tmp_path / "BENCH_campaign.json"
        assert main(
            ["campaign", "--quick", "--no-cache", "--workers", "1",
             "--oracle", "--out", str(out_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "oracle: 0 silent corruption event(s)" in out
        payload = json.loads(out_file.read_text())
        assert payload["config"]["oracle"] is True
        assert payload["oracle"]["corruption_events"] == 0


class TestPlan:
    def test_valid(self, capsys):
        assert main(["plan", "13", "4"]) == 0
        out = capsys.readouterr().out
        assert "goals met" in out and "parity" in out

    def test_invalid_shape(self, capsys):
        assert main(["plan", "12", "4"]) == 2

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])
