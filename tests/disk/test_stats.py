"""Tests for disk-op classification and counters."""

from repro.disk.stats import DiskOpClass, DiskStats, classify_operation


class TestClassification:
    def test_non_local_always_wins(self):
        for cyl in (False, True):
            for head in (False, True):
                assert (
                    classify_operation(False, cyl, head)
                    is DiskOpClass.NON_LOCAL_SEEK
                )

    def test_local_cylinder_switch(self):
        assert (
            classify_operation(True, True, True)
            is DiskOpClass.CYLINDER_SWITCH
        )
        assert (
            classify_operation(True, True, False)
            is DiskOpClass.CYLINDER_SWITCH
        )

    def test_local_track_switch(self):
        assert (
            classify_operation(True, False, True) is DiskOpClass.TRACK_SWITCH
        )

    def test_local_no_switch(self):
        assert classify_operation(True, False, False) is DiskOpClass.NO_SWITCH


class TestDiskStats:
    def test_record_accumulates(self):
        s = DiskStats()
        s.record(DiskOpClass.NO_SWITCH, 0.0, 3.0, 1.5)
        s.record(DiskOpClass.NON_LOCAL_SEEK, 8.0, 2.0, 1.5)
        assert s.operations == 2
        assert s.busy_ms == 16.0
        assert s.by_class[DiskOpClass.NO_SWITCH] == 1
        assert s.by_class[DiskOpClass.NON_LOCAL_SEEK] == 1

    def test_merge(self):
        a, b = DiskStats(), DiskStats()
        a.record(DiskOpClass.TRACK_SWITCH, 0.8, 1.0, 1.0)
        b.record(DiskOpClass.TRACK_SWITCH, 0.8, 2.0, 1.0)
        a.merge(b)
        assert a.operations == 2
        assert a.by_class[DiskOpClass.TRACK_SWITCH] == 2
        assert a.latency_ms == 3.0
