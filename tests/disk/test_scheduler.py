"""Tests for head-scheduling policies."""

import pytest

from repro.disk.drive import DiskRequest
from repro.disk.geometry import DiskGeometry, Zone
from repro.disk.scheduler import (
    FifoScheduler,
    LookScheduler,
    SstfScheduler,
    make_scheduler,
)
from repro.errors import ConfigurationError

GEOMETRY = DiskGeometry(heads=1, zones=[Zone(0, 100, 10)])


def req(cylinder, access_id=0):
    # head=1 zone spt=10 -> LBA = cylinder * 10.
    return DiskRequest(cylinder * 10, 1, False, access_id)


class TestFifo:
    def test_order_preserved(self):
        s = FifoScheduler(GEOMETRY)
        for c in [5, 1, 9]:
            s.push(req(c))
        popped = [s.pop(0).lba for _ in range(3)]
        assert popped == [50, 10, 90]

    def test_empty_pop(self):
        assert FifoScheduler(GEOMETRY).pop(0) is None


class TestSstf:
    def test_picks_nearest(self):
        s = SstfScheduler(GEOMETRY)
        for c in [50, 10, 90]:
            s.push(req(c))
        assert s.pop(12).lba == 100   # cylinder 10 nearest to 12
        assert s.pop(60).lba == 500
        assert s.pop(60).lba == 900

    def test_tie_goes_to_older(self):
        s = SstfScheduler(GEOMETRY)
        s.push(req(20))
        s.push(req(10))
        assert s.pop(15).lba == 200  # equidistant; first pushed wins

    def test_window_bounds_inspection(self):
        s = SstfScheduler(GEOMETRY, window=2)
        s.push(req(90))
        s.push(req(80))
        s.push(req(1))   # nearest to head, but outside the window
        assert s.pop(0).lba == 800

    def test_bad_window(self):
        with pytest.raises(ConfigurationError):
            SstfScheduler(GEOMETRY, window=0)

    def test_len_and_peek(self):
        s = SstfScheduler(GEOMETRY)
        s.push(req(5))
        s.push(req(6))
        assert len(s) == 2
        assert len(s.peek_all()) == 2


class TestLook:
    def test_sweeps_upward_then_reverses(self):
        s = LookScheduler(GEOMETRY)
        for c in [30, 10, 50]:
            s.push(req(c))
        assert s.pop(20).lba == 300   # upward: 30 first
        assert s.pop(30).lba == 500   # continue upward
        assert s.pop(50).lba == 100   # reverse

    def test_empty(self):
        assert LookScheduler(GEOMETRY).pop(0) is None


class TestFactory:
    def test_names(self):
        assert make_scheduler("sstf", GEOMETRY).name == "sstf"
        assert make_scheduler("FIFO", GEOMETRY).name == "fifo"
        assert make_scheduler("look", GEOMETRY).name == "look"

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_scheduler("cfq", GEOMETRY)
