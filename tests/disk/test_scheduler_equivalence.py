"""Property test: deque-backed schedulers == the original list-based ones.

The schedulers were rewritten from ``List`` + ``pop(0)``/``pop(i)`` to
:class:`collections.deque` with manual windowed argmins (see
``src/repro/disk/scheduler.py``).  Pop order is part of the simulator's
determinism contract — the golden traces pin it end-to-end — so this
test pins it directly: hypothesis drives random push/pop interleavings
through each production scheduler and through a faithful copy of the
pre-rewrite list implementation, and the two must agree on every pop
(including tie-breaks) and on the surviving queue order.
"""

from typing import List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.drive import DiskRequest
from repro.disk.geometry import DiskGeometry, Zone
from repro.disk.scheduler import make_scheduler

GEOMETRY = DiskGeometry(heads=2, zones=[Zone(0, 60, 12), Zone(60, 60, 8)])


# ----------------------------------------------------------------------
# Reference models: the original list-based implementations, verbatim
# modulo naming.
# ----------------------------------------------------------------------


class _ListScheduler:
    def __init__(self, geometry: DiskGeometry):
        self.geometry = geometry
        self._queue: List[Tuple[int, DiskRequest]] = []

    def push(self, request: DiskRequest) -> None:
        cylinder = self.geometry.lba_to_chs(request.lba).cylinder
        self._queue.append((cylinder, request))

    def peek_all(self) -> List[DiskRequest]:
        return [req for _, req in self._queue]


class _ListFifo(_ListScheduler):
    def pop(self, current_cylinder: int) -> Optional[DiskRequest]:
        if not self._queue:
            return None
        return self._queue.pop(0)[1]


class _ListSstf(_ListScheduler):
    def __init__(self, geometry: DiskGeometry, window: int):
        super().__init__(geometry)
        self.window = window

    def pop(self, current_cylinder: int) -> Optional[DiskRequest]:
        if not self._queue:
            return None
        candidates = self._queue[: self.window]
        best_index = min(
            range(len(candidates)),
            key=lambda i: (abs(candidates[i][0] - current_cylinder), i),
        )
        return self._queue.pop(best_index)[1]


class _ListLook(_ListScheduler):
    def __init__(self, geometry: DiskGeometry):
        super().__init__(geometry)
        self._direction = 1

    def pop(self, current_cylinder: int) -> Optional[DiskRequest]:
        if not self._queue:
            return None
        ahead = [
            (cyl, i)
            for i, (cyl, _) in enumerate(self._queue)
            if (cyl - current_cylinder) * self._direction >= 0
        ]
        if not ahead:
            self._direction = -self._direction
            ahead = [(cyl, i) for i, (cyl, _) in enumerate(self._queue)]
        _, index = min(
            ahead, key=lambda item: abs(item[0] - current_cylinder)
        )
        return self._queue.pop(index)[1]


# ----------------------------------------------------------------------
# The property.
# ----------------------------------------------------------------------

#: ("push", lba) or ("pop", current_cylinder).
_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"),
            st.integers(0, GEOMETRY.total_sectors - 1),
        ),
        st.tuples(st.just("pop"), st.integers(0, GEOMETRY.cylinders - 1)),
    ),
    max_size=80,
)


def _run_both(scheduler, reference, operations) -> None:
    next_id = 0
    for op, value in operations:
        if op == "push":
            request = DiskRequest(
                lba=value, sectors=1, is_write=False, access_id=next_id
            )
            next_id += 1
            scheduler.push(request)
            reference.push(request)
        else:
            got = scheduler.pop(value)
            want = reference.pop(value)
            assert got is want, (
                f"pop(cylinder={value}) diverged:"
                f" got {got}, reference {want}"
            )
    assert scheduler.peek_all() == reference.peek_all()


@settings(deadline=None)
@given(operations=_OPS)
def test_fifo_matches_list_reference(operations):
    _run_both(
        make_scheduler("fifo", GEOMETRY), _ListFifo(GEOMETRY), operations
    )


@settings(deadline=None)
@given(operations=_OPS, window=st.integers(1, 6))
def test_sstf_matches_list_reference(operations, window):
    _run_both(
        make_scheduler("sstf", GEOMETRY, window=window),
        _ListSstf(GEOMETRY, window),
        operations,
    )


@settings(deadline=None)
@given(operations=_OPS)
def test_look_matches_list_reference(operations):
    _run_both(
        make_scheduler("look", GEOMETRY), _ListLook(GEOMETRY), operations
    )


def test_sstf_tie_goes_to_oldest():
    """Equidistant candidates: the earlier-queued request wins."""
    scheduler = make_scheduler("sstf", GEOMETRY)
    spt = 12  # zone 0: cylinders 0..59, 2 heads
    per_cylinder = 2 * spt
    first = DiskRequest(10 * per_cylinder, 1, False, access_id=1)
    second = DiskRequest(30 * per_cylinder, 1, False, access_id=2)
    scheduler.push(first)
    scheduler.push(second)
    assert scheduler.pop(20) is first
    assert scheduler.pop(20) is second
