"""Transient I/O errors and the controller's retry/escalation path."""

import pytest

from repro.array.controller import (
    ArrayController,
    LogicalAccess,
    RetryPolicy,
)
from repro.disk.drive import TransientErrorModel
from repro.errors import ConfigurationError
from repro.layouts import make_layout
from repro.sim.engine import SimulationEngine


class TestTransientErrorModel:
    def test_zero_rate_consumes_no_randomness(self):
        # Byte-determinism contract: attaching an inactive model must
        # not shift any downstream draw.
        model = TransientErrorModel(0.0, seed="s")
        assert not any(model.draw() for _ in range(100))
        assert model.draws == 0 and model.injected == 0

    def test_draws_are_seeded_and_counted(self):
        a = TransientErrorModel(0.3, seed="k")
        b = TransientErrorModel(0.3, seed="k")
        outcomes = [a.draw() for _ in range(200)]
        assert outcomes == [b.draw() for _ in range(200)]
        assert a.draws == 200
        assert a.injected == sum(outcomes)
        assert 0 < a.injected < 200

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            TransientErrorModel(1.0, seed=0)
        with pytest.raises(ConfigurationError):
            TransientErrorModel(-0.1, seed=0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base_ms=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base_ms=5.0, backoff_cap_ms=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(op_timeout_ms=0.0)


def run_workload(rate, policy=None, accesses=60, is_write=False):
    engine = SimulationEngine()
    layout = make_layout("raid5", 5, 5)
    controller = ArrayController(engine, layout)
    if rate > 0:
        controller.enable_transient_errors(rate, seed=11, policy=policy)
    done = []

    def submit(i):
        controller.submit(
            LogicalAccess(i, (i * 3) % 40, 1, is_write),
            lambda a, ms: done.append(ms),
        )

    for i in range(accesses):
        engine.schedule_at(i * 5.0, lambda i=i: submit(i))
    engine.run()
    return controller, done


class TestControllerRecovery:
    def test_retries_absorb_transient_failures(self):
        controller, done = run_workload(0.05)
        stats = controller.io_stats
        assert len(done) == 60  # every access completed
        assert stats.transient_failures > 0
        assert stats.retries > 0
        # The default budget (3 retries at 5% rate) absorbs everything:
        # no read ever needed on-the-fly reconstruction.
        assert stats.escalated_reads == 0

    def test_exhausted_reads_escalate_to_reconstruction(self):
        policy = RetryPolicy(retries=0, backoff_base_ms=0.1)
        controller, done = run_workload(0.25, policy=policy)
        stats = controller.io_stats
        assert len(done) == 60
        assert stats.escalated_reads > 0
        # Escalation repairs the failing sector with a rewrite.
        assert stats.repaired_sectors > 0

    def test_exhausted_writes_remap_instead_of_escalating(self):
        policy = RetryPolicy(retries=0, backoff_base_ms=0.1)
        controller, done = run_workload(0.25, policy=policy, is_write=True)
        stats = controller.io_stats
        assert len(done) == 60
        assert stats.remapped_writes > 0

    def test_errors_cost_time_but_not_correctness(self):
        clean_controller, clean = run_workload(0.0)
        noisy_controller, noisy = run_workload(0.10)
        assert len(clean) == len(noisy) == 60
        assert sum(noisy) > sum(clean)  # retries + backoff cost time

    def test_disabled_injection_leaves_io_stats_empty(self):
        controller, done = run_workload(0.0)
        assert controller.io_stats.to_dict() == {
            "transient_failures": 0,
            "timeouts": 0,
            "retries": 0,
            "remapped_writes": 0,
            "escalated_reads": 0,
            "repaired_sectors": 0,
            "escalation_failures": 0,
            "raw_give_ups": 0,
        }
