"""Tests for the seek-time model."""

import pytest

from repro.disk.seek import SeekModel
from repro.errors import ConfigurationError


class TestSeekModel:
    def test_zero_distance_is_free(self):
        m = SeekModel(100, 2.9, 0.2, 0.01)
        assert m.seek_time(0) == 0.0

    def test_single_cylinder(self):
        m = SeekModel(100, 2.9, 0.2, 0.01)
        assert m.seek_time(1) == pytest.approx(2.9)

    def test_monotone(self):
        m = SeekModel(1981, 2.9, 0.17, 0.004)
        times = [m.seek_time(d) for d in range(1, 1981)]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_negative_distance(self):
        with pytest.raises(ConfigurationError):
            SeekModel(100, 2.9, 0.2, 0.01).seek_time(-1)

    def test_negative_params_rejected(self):
        with pytest.raises(ConfigurationError):
            SeekModel(100, -1, 0.2, 0.01)
        with pytest.raises(ConfigurationError):
            SeekModel(1, 2.9, 0.2, 0.01)


class TestFitted:
    def test_hits_published_numbers(self):
        m = SeekModel.fitted(1981, 2.9, 10.0, 18.0)
        assert m.average_seek_time() == pytest.approx(10.0, abs=1e-9)
        assert m.seek_time(1980) == pytest.approx(18.0, abs=1e-9)
        assert m.seek_time(1) == pytest.approx(2.9)

    def test_requires_ordering(self):
        with pytest.raises(ConfigurationError):
            SeekModel.fitted(1981, 10.0, 2.9, 18.0)

    def test_non_physical_rejected(self):
        # An average far above the midpoint of single..max forces a concave
        # curve with negative coefficients.
        with pytest.raises(ConfigurationError):
            SeekModel.fitted(1981, 2.9, 17.5, 18.0)

    def test_other_drive_classes_fit(self):
        for cyls, single, avg, mx in [(500, 1.0, 6.0, 14.0), (4000, 0.5, 8.0, 16.0)]:
            m = SeekModel.fitted(cyls, single, avg, mx)
            assert m.average_seek_time() == pytest.approx(avg, abs=1e-9)
