"""Tests for zoned disk geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.disk.geometry import Chs, DiskGeometry, Zone, uniform_zones
from repro.disk.hp2247 import HP2247_GEOMETRY
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def small():
    return DiskGeometry(heads=2, zones=[Zone(0, 2, 10), Zone(2, 2, 8)])


class TestConstruction:
    def test_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskGeometry(heads=2, zones=[Zone(0, 2, 10), Zone(3, 2, 8)])

    def test_zero_heads_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskGeometry(heads=0, zones=[Zone(0, 1, 10)])

    def test_degenerate_zone_rejected(self):
        with pytest.raises(ConfigurationError):
            Zone(0, 0, 10)
        with pytest.raises(ConfigurationError):
            Zone(0, 5, 0)

    def test_totals(self, small):
        assert small.total_sectors == 2 * 2 * 10 + 2 * 2 * 8
        assert small.cylinders == 4


class TestTranslation:
    def test_lba_roundtrip(self, small):
        for lba in range(small.total_sectors):
            assert small.chs_to_lba(small.lba_to_chs(lba)) == lba

    def test_chs_monotone_in_lba(self, small):
        previous = (-1, -1, -1)
        for lba in range(small.total_sectors):
            chs = small.lba_to_chs(lba)
            assert tuple(chs) > previous
            previous = tuple(chs)

    def test_zone_boundary(self, small):
        # Last sector of zone 0 vs first of zone 1.
        last0 = 2 * 2 * 10 - 1
        assert small.lba_to_chs(last0) == Chs(1, 1, 9)
        assert small.lba_to_chs(last0 + 1) == Chs(2, 0, 0)

    def test_out_of_range(self, small):
        with pytest.raises(ConfigurationError):
            small.lba_to_chs(small.total_sectors)
        with pytest.raises(ConfigurationError):
            small.lba_to_chs(-1)
        with pytest.raises(ConfigurationError):
            small.chs_to_lba(Chs(0, 2, 0))
        with pytest.raises(ConfigurationError):
            small.chs_to_lba(Chs(0, 0, 10))

    def test_sectors_per_track(self, small):
        assert small.sectors_per_track(0) == 10
        assert small.sectors_per_track(3) == 8
        with pytest.raises(ConfigurationError):
            small.sectors_per_track(4)

    @given(st.integers(min_value=0))
    def test_hp2247_roundtrip(self, lba):
        lba %= HP2247_GEOMETRY.total_sectors
        assert HP2247_GEOMETRY.chs_to_lba(HP2247_GEOMETRY.lba_to_chs(lba)) == lba


class TestHp2247Envelope:
    def test_table2_parameters(self):
        assert HP2247_GEOMETRY.cylinders == 1981
        assert HP2247_GEOMETRY.heads == 13
        assert len(HP2247_GEOMETRY.zones) == 8

    def test_capacity_is_1_03_gb(self):
        gb = HP2247_GEOMETRY.capacity_bytes / 1e9
        assert 1.02 <= gb <= 1.05

    def test_outer_zones_denser(self):
        densities = [z.sectors_per_track for z in HP2247_GEOMETRY.zones]
        assert densities == sorted(densities, reverse=True)


class TestUniformZones:
    def test_covers_all_cylinders(self):
        zones = uniform_zones(1981, 8, [96, 91, 86, 81, 76, 71, 66, 61])
        assert sum(z.cylinders for z in zones) == 1981

    def test_density_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            uniform_zones(100, 3, [10, 9])
