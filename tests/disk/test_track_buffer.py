"""Tests for the optional drive track buffer."""

import pytest

from repro.disk.drive import DiskDrive, DiskRequest
from repro.disk.geometry import DiskGeometry, Zone
from repro.disk.hp2247 import make_hp2247
from repro.disk.seek import SeekModel
from repro.errors import ConfigurationError


def buffered_drive():
    geometry = DiskGeometry(heads=2, zones=[Zone(0, 10, 10)])
    seek = SeekModel(10, 2.0, 0.5, 0.1)
    return DiskDrive(
        geometry, seek, rpm=6000, head_switch_ms=0.8,
        cylinder_switch_ms=2.0, track_buffer=True, buffer_hit_ms=0.2,
    )


class TestTrackBuffer:
    def test_second_read_of_track_hits(self):
        d = buffered_drive()
        first = d.service(DiskRequest(0, 4, False, access_id=0), now_ms=0.0)
        assert first.total_ms > 0.2
        second = d.service(DiskRequest(4, 4, False, access_id=0), now_ms=20.0)
        assert second.total_ms == pytest.approx(0.2)
        assert d.buffer_hits == 1

    def test_hit_leaves_arm_unmoved(self):
        d = buffered_drive()
        d.service(DiskRequest(0, 2, False, access_id=0), now_ms=0.0)
        d.service(DiskRequest(25, 1, False, access_id=0), now_ms=20.0)
        # Arm is at cylinder 1 now; no buffered track for cyl 0.
        assert d.cylinder == 1

    def test_different_track_misses(self):
        d = buffered_drive()
        d.service(DiskRequest(0, 2, False, access_id=0), now_ms=0.0)
        miss = d.service(DiskRequest(10, 2, False, access_id=0), now_ms=20.0)
        assert miss.total_ms > 0.2
        assert d.buffer_hits == 0

    def test_write_invalidates(self):
        d = buffered_drive()
        d.service(DiskRequest(0, 2, False, access_id=0), now_ms=0.0)
        d.service(DiskRequest(5, 1, True, access_id=0), now_ms=20.0)
        after = d.service(DiskRequest(0, 2, False, access_id=0), now_ms=40.0)
        assert after.total_ms > 0.2

    def test_write_never_hits(self):
        d = buffered_drive()
        d.service(DiskRequest(0, 2, False, access_id=0), now_ms=0.0)
        write = d.service(DiskRequest(2, 1, True, access_id=0), now_ms=20.0)
        assert write.total_ms > 0.2

    def test_read_spanning_tracks_misses_but_caches_last(self):
        d = buffered_drive()
        d.service(DiskRequest(5, 10, False, access_id=0), now_ms=0.0)
        # Final track read was (cyl 0, head 1): LBAs 10..14.
        hit = d.service(DiskRequest(12, 2, False, access_id=0), now_ms=20.0)
        assert hit.total_ms == pytest.approx(0.2)

    def test_disabled_by_default(self):
        d = make_hp2247()
        d.service(DiskRequest(0, 4, False, access_id=0), now_ms=0.0)
        again = d.service(DiskRequest(0, 4, False, access_id=0), now_ms=20.0)
        assert again.total_ms > 0.2
        assert d.buffer_hits == 0

    def test_reset_clears_buffer(self):
        d = buffered_drive()
        d.service(DiskRequest(0, 2, False, access_id=0), now_ms=0.0)
        d.reset()
        miss = d.service(DiskRequest(0, 2, False, access_id=0), now_ms=20.0)
        assert miss.total_ms > 0.2

    def test_negative_hit_time_rejected(self):
        geometry = DiskGeometry(heads=1, zones=[Zone(0, 5, 10)])
        with pytest.raises(ConfigurationError):
            DiskDrive(
                geometry, SeekModel(5, 1.0, 0.1, 0.1), rpm=6000,
                head_switch_ms=0.8, cylinder_switch_ms=2.0,
                track_buffer=True, buffer_hit_ms=-1.0,
            )
