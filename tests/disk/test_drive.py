"""Tests for the mechanical drive service model."""

import pytest

from repro.disk.drive import DiskDrive, DiskRequest
from repro.disk.geometry import DiskGeometry, Zone
from repro.disk.hp2247 import make_hp2247
from repro.disk.seek import SeekModel
from repro.errors import ConfigurationError


@pytest.fixture()
def drive():
    return make_hp2247()


def simple_drive():
    geometry = DiskGeometry(heads=2, zones=[Zone(0, 10, 10)])
    seek = SeekModel(10, 2.0, 0.5, 0.1)
    return DiskDrive(geometry, seek, rpm=6000, head_switch_ms=0.8,
                     cylinder_switch_ms=2.0)


class TestServiceComponents:
    def test_same_track_no_seek(self):
        d = simple_drive()
        rec = d.service(DiskRequest(0, 2, False, access_id=0), now_ms=0.0)
        assert rec.seek_ms == 0.0
        assert not rec.cylinder_changed and not rec.head_changed

    def test_head_switch_only(self):
        d = simple_drive()
        # LBA 10 is cylinder 0, head 1.
        rec = d.service(DiskRequest(10, 1, False, access_id=0), now_ms=0.0)
        assert rec.seek_ms == pytest.approx(0.8)
        assert rec.head_changed and not rec.cylinder_changed

    def test_cylinder_seek(self):
        d = simple_drive()
        # LBA 20 is cylinder 1.
        rec = d.service(DiskRequest(20, 1, False, access_id=0), now_ms=0.0)
        assert rec.cylinder_changed
        assert rec.seek_ms == pytest.approx(d.seek_model.seek_time(1))

    def test_transfer_time_scales_with_sectors(self):
        d = simple_drive()
        per_sector = d.revolution_ms / 10
        rec = d.service(DiskRequest(0, 5, False, access_id=0), now_ms=0.0)
        assert rec.transfer_ms == pytest.approx(5 * per_sector)

    def test_track_crossing_adds_head_switch(self):
        d = simple_drive()
        per_sector = d.revolution_ms / 10
        rec = d.service(DiskRequest(5, 10, False, access_id=0), now_ms=0.0)
        assert rec.transfer_ms == pytest.approx(10 * per_sector + 0.8)

    def test_cylinder_crossing_adds_cylinder_switch(self):
        d = simple_drive()
        per_sector = d.revolution_ms / 10
        # Start in last track of cylinder 0 (head 1), spill into cylinder 1.
        rec = d.service(DiskRequest(15, 10, False, access_id=0), now_ms=0.0)
        assert rec.transfer_ms == pytest.approx(10 * per_sector + 2.0)

    def test_arm_position_updates(self):
        d = simple_drive()
        d.service(DiskRequest(25, 1, False, access_id=0), now_ms=0.0)
        assert d.cylinder == 1
        assert d.head == 0

    def test_rotational_latency_bounded_by_revolution(self):
        d = simple_drive()
        for now in [0.0, 1.7, 9.93, 123.456]:
            d.reset()
            rec = d.service(DiskRequest(3, 1, False, access_id=0), now_ms=now)
            assert 0 <= rec.latency_ms < d.revolution_ms

    def test_latency_depends_on_arrival_time(self):
        a = simple_drive()
        b = simple_drive()
        ra = a.service(DiskRequest(3, 1, False, access_id=0), now_ms=0.0)
        rb = b.service(DiskRequest(3, 1, False, access_id=0), now_ms=2.0)
        assert ra.latency_ms != pytest.approx(rb.latency_ms)

    def test_empty_transfer_rejected(self):
        d = simple_drive()
        with pytest.raises(ConfigurationError):
            d.service(DiskRequest(0, 0, False, access_id=0), now_ms=0.0)

    def test_out_of_range_transfer_rejected(self):
        d = simple_drive()
        with pytest.raises(ConfigurationError):
            d.service(DiskRequest(195, 10, False, access_id=0), now_ms=0.0)


class TestHp2247Behaviour:
    def test_8kb_stripe_unit_service_envelope(self, drive):
        # A 16-sector read: at most seek + full rotation + ~2 track times.
        rec = drive.service(
            DiskRequest(1_000_000, 16, False, access_id=0), now_ms=0.0
        )
        assert rec.total_ms < 18.0 + 11.2 + 5.0

    def test_average_rotation_close_to_half_rev(self, drive):
        # Paper: "the no-switch service time is less than 5.6 ms" — i.e.
        # mean rotational latency ~ half a revolution.
        total = 0.0
        samples = 200
        for i in range(samples):
            drive.reset()
            rec = drive.service(
                DiskRequest(500, 1, False, access_id=0),
                now_ms=i * 0.3937,
            )
            total += rec.latency_ms
        mean = total / samples
        assert 4.5 < mean < 6.5

    def test_mismatched_seek_model_rejected(self):
        from repro.disk.hp2247 import HP2247_GEOMETRY

        with pytest.raises(ConfigurationError):
            DiskDrive(HP2247_GEOMETRY, SeekModel(100, 2.9, 0.1, 0.01),
                      rpm=5400, head_switch_ms=0.8, cylinder_switch_ms=2.9)

    def test_bad_rpm_rejected(self):
        from repro.disk.hp2247 import HP2247_GEOMETRY, HP2247_SEEK

        with pytest.raises(ConfigurationError):
            DiskDrive(HP2247_GEOMETRY, HP2247_SEEK, rpm=0,
                      head_switch_ms=0.8, cylinder_switch_ms=2.9)
