"""Smoke tests that run every example script end to end.

Keeps `examples/` from rotting: each must run to completion and print its
headline content.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "(0, 1, 2, 4, 3, 6, 5)" in out
        assert "Layout goals met: [1, 2, 3, 4, 6, 7, 8]" in out
        assert "row 0  S" in out

    def test_storage_server_comparison(self, capsys):
        run_example("storage_server_comparison.py", ["60"])
        out = capsys.readouterr().out
        assert "fault-free" in out and "degraded" in out
        assert "best-to-worst at heavy load" in out

    def test_failure_recovery_demo(self, capsys):
        run_example("failure_recovery_demo.py")
        out = capsys.readouterr().out
        assert "failing disk 5" in out
        assert "reconstruction finished" in out
        assert "post-reconstruction" in out

    def test_layout_explorer(self, capsys):
        run_example("layout_explorer.py")
        out = capsys.readouterr().out
        assert "Goal matrix" in out
        assert "Pseudo-Random" in out
        assert "ns/mapping" in out

    def test_capacity_planner_prime(self, capsys):
        run_example("capacity_planner.py", ["13", "4"])
        out = capsys.readouterr().out
        assert "Base permutations needed: 1" in out
        assert "Goals met" in out

    def test_capacity_planner_gf16(self, capsys):
        run_example("capacity_planner.py", ["16", "5"])
        out = capsys.readouterr().out
        assert "XorDevelopment" in out

    def test_capacity_planner_bad_shape(self, capsys):
        run_example("capacity_planner.py", ["12", "4"])
        out = capsys.readouterr().out
        assert "nearby options" in out

    def test_pq_array_demo(self, capsys):
        run_example("pq_array_demo.py")
        out = capsys.readouterr().out
        assert "double failure" in out.lower()
