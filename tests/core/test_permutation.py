"""Tests for base permutations and permutation groups."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.development import ModularDevelopment, XorDevelopment
from repro.core.permutation import (
    BasePermutation,
    PermutationGroup,
    identity_permutation,
)
from repro.errors import ConfigurationError

PAPER_N7 = (0, 1, 2, 4, 3, 6, 5)


class TestConstruction:
    def test_paper_example(self):
        bp = BasePermutation(PAPER_N7, k=3)
        assert (bp.n, bp.g, bp.spares) == (7, 2, 1)

    def test_rejects_non_permutation(self):
        with pytest.raises(ConfigurationError):
            BasePermutation((0, 1, 1, 2, 3, 4, 5), k=3)

    def test_rejects_bad_decomposition(self):
        with pytest.raises(ConfigurationError):
            BasePermutation(tuple(range(8)), k=3)  # 8 != 3g + 1

    def test_rejects_k1(self):
        with pytest.raises(ConfigurationError):
            BasePermutation((0, 1, 2), k=1)

    def test_zero_spares(self):
        bp = BasePermutation(tuple(range(6)), k=3, spares=0)
        assert bp.g == 2 and bp.spares == 0

    def test_two_spares(self):
        bp = BasePermutation(tuple(range(8)), k=3, spares=2)
        assert bp.g == 2


class TestColumnStructure:
    def test_roles(self):
        bp = BasePermutation(PAPER_N7, k=3)
        assert bp.column_group(0) == -1  # spare
        assert bp.column_group(1) == 0
        assert bp.column_group(3) == 0
        assert bp.column_group(4) == 1
        assert not bp.is_check_column(0)
        assert not bp.is_check_column(1)
        assert bp.is_check_column(3)
        assert bp.is_check_column(6)

    def test_group_columns(self):
        bp = BasePermutation(PAPER_N7, k=3)
        assert list(bp.group_columns(0)) == [1, 2, 3]
        assert list(bp.group_columns(1)) == [4, 5, 6]
        with pytest.raises(ConfigurationError):
            bp.group_columns(2)

    def test_disk_of_column_row0(self):
        # Figure 2: in row 0, A0->disk1, A1->disk2, PA->disk4.
        bp = BasePermutation(PAPER_N7, k=3)
        dev = ModularDevelopment(7)
        assert bp.disk_of_column(1, 0, dev) == 1
        assert bp.disk_of_column(2, 0, dev) == 2
        assert bp.disk_of_column(3, 0, dev) == 4

    def test_disk_of_column_row1(self):
        # §2: "D1 on disk 5 maps to disk 0 and PD on disk 6 maps to disk 6"
        # (virtual D1 is column 5, PD column 6, row 1).
        bp = BasePermutation(PAPER_N7, k=3)
        dev = ModularDevelopment(7)
        assert bp.disk_of_column(5, 1, dev) == 0
        assert bp.disk_of_column(6, 1, dev) == 6

    def test_column_of_disk_inverse(self):
        bp = BasePermutation(PAPER_N7, k=3)
        dev = ModularDevelopment(7)
        for t in range(7):
            for disk in range(7):
                column = bp.column_of_disk(disk, t, dev)
                assert bp.disk_of_column(column, t, dev) == disk


class TestReconstructionTally:
    def test_paper_satisfactory(self):
        bp = BasePermutation(PAPER_N7, k=3)
        assert bp.is_satisfactory()
        assert set(bp.reconstruction_read_tally().values()) == {2}

    def test_identity_unsatisfactory(self):
        # §2: "(0 1 2 3 4 5 6) ... spread over only four disks".
        bp = identity_permutation(2, 3)
        tally = bp.reconstruction_read_tally()
        busy = [d for d, c in tally.items() if c > 0]
        assert len(busy) == 4
        assert not bp.is_satisfactory()
        assert bp.tally_deviation() > 0

    def test_paper_n10_tallies(self):
        a = BasePermutation((0, 1, 2, 8, 3, 5, 7, 4, 6, 9), k=3)
        b = BasePermutation((0, 1, 2, 4, 3, 7, 8, 5, 6, 9), k=3)
        assert [a.reconstruction_read_tally()[d] for d in range(1, 10)] == [
            1, 3, 2, 2, 2, 2, 2, 3, 1,
        ]
        assert [b.reconstruction_read_tally()[d] for d in range(1, 10)] == [
            3, 1, 2, 2, 2, 2, 2, 1, 3,
        ]

    def test_tally_total_is_conserved(self):
        bp = BasePermutation(PAPER_N7, k=3)
        tally = bp.reconstruction_read_tally()
        # n-1 lost stripe units (one spare excluded), k-1 reads each.
        assert sum(tally.values()) == (bp.n - 1) * (bp.k - 1)

    def test_satisfactory_for_every_failed_disk(self):
        # Development symmetry: disk 0 being uniform implies all are.
        bp = BasePermutation(PAPER_N7, k=3)
        for failed in range(7):
            tally = bp.reconstruction_read_tally(failed)
            assert set(tally.values()) == {2}

    def test_write_tally(self):
        bp = BasePermutation(PAPER_N7, k=3)
        writes = bp.reconstruction_write_tally()
        assert sum(writes.values()) == bp.n - 1

    def test_write_tally_needs_spares(self):
        bp = BasePermutation(tuple(range(6)), k=3, spares=0)
        with pytest.raises(ConfigurationError):
            bp.reconstruction_write_tally()

    def test_xor_development(self):
        values = (0, 1, 15, 8, 4, 2, 3, 14, 7, 12, 6, 5, 13, 9, 11, 10)
        bp = BasePermutation(values, k=5)
        assert bp.is_satisfactory(XorDevelopment(16))

    def test_development_size_mismatch(self):
        bp = BasePermutation(PAPER_N7, k=3)
        with pytest.raises(ConfigurationError):
            bp.reconstruction_read_tally(dev=ModularDevelopment(13))

    def test_failed_disk_out_of_range(self):
        bp = BasePermutation(PAPER_N7, k=3)
        with pytest.raises(ConfigurationError):
            bp.reconstruction_read_tally(failed=7)


class TestPermutationGroup:
    def test_paper_pair(self):
        a = BasePermutation((0, 1, 2, 8, 3, 5, 7, 4, 6, 9), k=3)
        b = BasePermutation((0, 1, 2, 4, 3, 7, 8, 5, 6, 9), k=3)
        group = PermutationGroup([a, b])
        assert group.is_satisfactory()
        assert set(group.combined_tally().values()) == {4}
        assert group.tally_deviation() == 0

    def test_rejects_mixed_shapes(self):
        a = BasePermutation(PAPER_N7, k=3)
        b = BasePermutation(tuple(range(10)), k=3)
        with pytest.raises(ConfigurationError):
            PermutationGroup([a, b])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            PermutationGroup([])

    def test_singleton_group(self):
        bp = BasePermutation(PAPER_N7, k=3)
        group = PermutationGroup([bp])
        assert group.p == 1
        assert group.is_satisfactory()


@given(st.randoms(use_true_random=False))
def test_any_permutation_has_conserved_tally(rnd):
    """Goal #3 totals hold for arbitrary (even bad) permutations."""
    values = list(range(7))
    rnd.shuffle(values)
    bp = BasePermutation(values, k=3)
    tally = bp.reconstruction_read_tally()
    assert sum(tally.values()) == 12
    assert all(c >= 0 for c in tally.values())
