"""Tests for PDDLLayout — including the paper's Figure 2 worked example."""

import pytest

from repro.core.bose import bose_base_permutation
from repro.core.layout import PDDLLayout, pddl_for
from repro.core.permutation import BasePermutation, PermutationGroup
from repro.core.tables import PAPER_N10_K3_PAIR, PAPER_N16_K5
from repro.errors import ConfigurationError, MappingError
from repro.layouts.address import PhysicalAddress, Role


@pytest.fixture(scope="module")
def seven():
    return PDDLLayout(bose_base_permutation(2, 3, omega=3))


class TestFigure2:
    """Reproduce the right-hand array of Figure 2 cell by cell."""

    # Figure 2 physical array rows (disk0..disk6), S=spare, letters=data,
    # P<letter>=check.  Stripe A is row 0 group 0, B row 0 group 1, C row 1
    # group 0, etc.
    def test_row0(self, seven):
        # S  A0  A1  B0  PA  PB  B1
        a = seven.stripe_units_in_period(0)   # stripe A
        b = seven.stripe_units_in_period(1)   # stripe B
        assert a.data == [PhysicalAddress(1, 0), PhysicalAddress(2, 0)]
        assert a.check == [PhysicalAddress(4, 0)]
        assert b.data == [PhysicalAddress(3, 0), PhysicalAddress(6, 0)]
        assert b.check == [PhysicalAddress(5, 0)]
        assert seven.spare_addresses_in_period()[0] == PhysicalAddress(0, 0)

    def test_row1(self, seven):
        # D1 lands on disk 0, PD on disk 6 (paper §2 text).
        d = seven.stripe_units_in_period(3)   # stripe D = row 1, group 1
        assert d.data[1] == PhysicalAddress(0, 1)
        assert d.check == [PhysicalAddress(6, 1)]

    def test_spare_diagonal(self, seven):
        # Spare space runs down the main diagonal: disk t in row t.
        spares = seven.spare_addresses_in_period()
        assert spares == [PhysicalAddress(t, t) for t in range(7)]

    def test_every_cell_used_once(self, seven):
        seven.validate()

    def test_role_fractions(self, seven):
        # §2: 1/7 spare, 2/7 parity, 4/7 data.
        assert seven.spare_overhead == pytest.approx(1 / 7)
        assert seven.parity_overhead == pytest.approx(2 / 7)


class TestMappingFunctions:
    def test_virtual_to_physical_matches_paper_code(self, seven):
        # int virtual2physical(d, o) { return (perm[d] + o) % 7 }
        perm = (0, 1, 2, 4, 3, 6, 5)
        for disk in range(7):
            for offset in range(21):
                assert seven.virtual_to_physical(disk, offset) == (
                    (perm[disk] + offset) % 7
                )

    def test_virtual_disk_of(self, seven):
        # g=2, k=3: data columns per row = 4; virtual columns 1,2,4,5.
        assert seven.virtual_disk_of(0) == PhysicalAddress(1, 0)
        assert seven.virtual_disk_of(1) == PhysicalAddress(2, 0)
        assert seven.virtual_disk_of(2) == PhysicalAddress(4, 0)
        assert seven.virtual_disk_of(3) == PhysicalAddress(5, 0)
        assert seven.virtual_disk_of(4) == PhysicalAddress(1, 1)

    def test_virtual_interface_consistent_with_layout(self, seven):
        # data_unit_address must equal virtual_disk_of piped through
        # virtual_to_physical.
        for unit in range(4 * 7 * 3):
            column, offset = seven.virtual_disk_of(unit)
            disk = seven.virtual_to_physical(column, offset)
            assert seven.data_unit_address(unit) == PhysicalAddress(
                disk, offset
            )

    def test_bad_virtual_addresses(self, seven):
        with pytest.raises(MappingError):
            seven.virtual_to_physical(7, 0)
        with pytest.raises(MappingError):
            seven.virtual_to_physical(0, -1)
        with pytest.raises(MappingError):
            seven.virtual_disk_of(-1)


class TestRelocation:
    def test_targets_same_row_spare(self, seven):
        for offset in range(7):
            for disk in range(7):
                info = seven.locate(disk, offset)
                if info.role is Role.SPARE:
                    with pytest.raises(MappingError):
                        seven.relocation_target(PhysicalAddress(disk, offset))
                else:
                    target = seven.relocation_target(
                        PhysicalAddress(disk, offset)
                    )
                    assert target.offset == offset
                    assert seven.locate(*target).role is Role.SPARE

    def test_extends_across_periods(self, seven):
        target = seven.relocation_target(PhysicalAddress(1, 14))
        assert target == PhysicalAddress(0, 14)


class TestMultiPermutation:
    def test_pair_layout(self):
        group = PermutationGroup(
            [BasePermutation(v, k=3) for v in PAPER_N10_K3_PAIR]
        )
        layout = PDDLLayout(group)
        layout.validate()
        assert layout.period == 20  # paper: "a 20 row layout pattern"
        assert layout.stripes_per_period == 20 * 3

    def test_rows_alternate_permutations(self):
        group = PermutationGroup(
            [BasePermutation(v, k=3) for v in PAPER_N10_K3_PAIR]
        )
        layout = PDDLLayout(group)
        # Row 0 uses perm A (spare at disk 0), row 10 perm B (spare disk 0).
        spares = layout.spare_addresses_in_period()
        assert spares[0].disk == PAPER_N10_K3_PAIR[0][0]
        assert spares[10].disk == PAPER_N10_K3_PAIR[1][0]


class TestXorLayout:
    def test_gf16_layout_validates(self):
        layout = PDDLLayout(BasePermutation(PAPER_N16_K5, k=5))
        # development_for(16) picks XOR automatically.
        layout.validate()
        assert layout.period == 16
        from repro.core.development import XorDevelopment

        assert isinstance(layout.dev, XorDevelopment)


class TestPddlFor:
    def test_prime(self):
        layout = pddl_for(3, 4)
        assert layout.n == 13
        layout.validate()

    def test_published(self):
        layout = pddl_for(3, 3)  # n = 10, uses the paper pair
        assert layout.group.p == 2
        layout.validate()

    def test_search_fallback(self):
        layout = pddl_for(4, 5)  # n = 21, composite, not published
        layout.validate()
        from repro.core.reconstruction import reconstruction_deviation

        assert reconstruction_deviation(layout) == 0

    def test_development_mismatch_rejected(self):
        from repro.core.development import ModularDevelopment

        perm = BasePermutation(PAPER_N16_K5, k=5)
        with pytest.raises(ConfigurationError):
            PDDLLayout(perm, ModularDevelopment(13))
