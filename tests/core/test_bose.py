"""Tests for the Bose construction."""

import pytest

from repro.core.bose import (
    bose_base_permutation,
    bose_gf2_base_permutation,
    satisfactory_permutation,
)
from repro.core.development import XorDevelopment
from repro.designs.difference import is_difference_family
from repro.errors import ConfigurationError
from repro.gf.binary import PAPER_GF16_MODULUS, BinaryField


class TestPrimeConstruction:
    def test_paper_seven_disk_example(self):
        perm = bose_base_permutation(2, 3, omega=3)
        assert perm.values == (0, 1, 2, 4, 3, 6, 5)

    @pytest.mark.parametrize(
        "g,k",
        [(1, 4), (2, 3), (3, 4), (2, 5), (6, 5), (4, 7), (10, 6), (5, 12)],
    )
    def test_always_satisfactory(self, g, k):
        perm = bose_base_permutation(g, k)
        assert perm.is_satisfactory()

    def test_blocks_form_difference_family(self):
        # The appendix's equivalence: the permutation's groups are a
        # difference family in Z_n.
        perm = bose_base_permutation(3, 4)  # n = 13
        blocks = [
            [perm.values[c] for c in perm.group_columns(i)]
            for i in range(perm.g)
        ]
        assert is_difference_family(blocks, 13, lam=perm.k - 1)

    def test_rejects_composite_n(self):
        with pytest.raises(ConfigurationError):
            bose_base_permutation(3, 3)  # n = 10

    def test_rejects_nonprimitive_omega(self):
        with pytest.raises(ConfigurationError):
            bose_base_permutation(2, 3, omega=2)  # 2 has order 3 mod 7

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            bose_base_permutation(0, 3)
        with pytest.raises(ConfigurationError):
            bose_base_permutation(2, 1)


class TestGF2Construction:
    def test_paper_gf16_example(self):
        field = BinaryField(4, modulus=PAPER_GF16_MODULUS)
        perm = bose_gf2_base_permutation(3, 5, field=field)
        assert perm.values == (
            0, 1, 15, 8, 4, 2, 3, 14, 7, 12, 6, 5, 13, 9, 11, 10,
        )

    def test_satisfactory_under_xor(self):
        field = BinaryField(4, modulus=PAPER_GF16_MODULUS)
        perm = bose_gf2_base_permutation(3, 5, field=field)
        assert perm.is_satisfactory(XorDevelopment(16))

    def test_gf8(self):
        perm = bose_gf2_base_permutation(1, 7)  # n = 8
        assert perm.is_satisfactory(XorDevelopment(8))

    def test_gf32(self):
        perm = bose_gf2_base_permutation(1, 31)  # n = 32
        assert perm.is_satisfactory(XorDevelopment(32))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            bose_gf2_base_permutation(2, 3)  # n = 7

    def test_rejects_field_mismatch(self):
        field = BinaryField(3)
        with pytest.raises(ConfigurationError):
            bose_gf2_base_permutation(3, 5, field=field)


class TestSatisfactoryPermutation:
    def test_prime_route(self):
        perm = satisfactory_permutation(3, 4)
        assert perm.is_satisfactory()

    def test_power_of_two_route(self):
        perm = satisfactory_permutation(3, 5)
        assert perm.is_satisfactory(XorDevelopment(16))

    def test_composite_raises(self):
        with pytest.raises(ConfigurationError):
            satisfactory_permutation(3, 3)  # n = 10 needs a group


class TestGFPrimePowerConstruction:
    """The general GF(p^m) Bose construction (odd prime powers)."""

    @pytest.mark.parametrize(
        "g,k,p,m",
        [(2, 4, 3, 2), (4, 6, 5, 2), (2, 13, 3, 3), (6, 8, 7, 2)],
    )
    def test_satisfactory_under_digit_development(self, g, k, p, m):
        from repro.core.bose import bose_gf_base_permutation
        from repro.core.development import DigitDevelopment

        perm = bose_gf_base_permutation(g, k, p, m)
        assert perm.is_satisfactory(DigitDevelopment(p, m))

    def test_not_satisfactory_under_modular(self):
        from repro.core.bose import bose_gf_base_permutation

        perm = bose_gf_base_permutation(2, 4, 3, 2)
        # Development must be the field's addition, not integer addition.
        assert not perm.is_satisfactory()

    def test_shape_validation(self):
        from repro.core.bose import bose_gf_base_permutation

        with pytest.raises(ConfigurationError):
            bose_gf_base_permutation(2, 4, 3, 3)  # 27 != 9
        with pytest.raises(ConfigurationError):
            bose_gf_base_permutation(2, 4, 9, 1)  # 9 not prime

    def test_satisfactory_permutation_routes_prime_powers(self):
        from repro.core.development import DigitDevelopment

        perm = satisfactory_permutation(2, 4)  # n = 9
        assert perm.is_satisfactory(DigitDevelopment(3, 2))

    def test_pddl_for_builds_gf9_layout(self):
        from repro.core.development import DigitDevelopment
        from repro.core.layout import pddl_for
        from repro.core.reconstruction import reconstruction_deviation

        layout = pddl_for(2, 4)
        layout.validate()
        assert isinstance(layout.dev, DigitDevelopment)
        assert reconstruction_deviation(layout) == 0
