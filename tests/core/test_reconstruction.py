"""Tests for the generic reconstruction planner."""

import pytest

from repro.core.bose import bose_base_permutation
from repro.core.layout import PDDLLayout
from repro.core.reconstruction import (
    rebuild_plan,
    rebuild_read_tally,
    rebuild_write_tally,
    reconstruction_deviation,
)
from repro.errors import ConfigurationError
from repro.layouts import make_layout
from repro.layouts.address import Role


@pytest.fixture(scope="module")
def seven():
    return PDDLLayout(bose_base_permutation(2, 3, omega=3))


class TestRebuildPlan:
    def test_step_counts(self, seven):
        steps = list(rebuild_plan(seven, 0))
        # Seven rows, one of which holds the failed disk's spare unit.
        assert len(steps) == 6

    def test_reads_exclude_failed_disk(self, seven):
        for failed in range(7):
            for step in rebuild_plan(seven, failed):
                assert all(a.disk != failed for a in step.reads)
                assert len(step.reads) == seven.k - 1

    def test_writes_go_to_spare_cells(self, seven):
        for step in rebuild_plan(seven, 2):
            assert step.write is not None
            assert seven.locate(*step.write).role is Role.SPARE
            assert step.write.offset == step.lost.offset

    def test_paper_worked_example(self, seven):
        # §2: disk 0 fails.  "row 3 indicates that disks 4 and 5 must be
        # accessed to reconstruct the parity unit ... stored on the spare
        # space of disk 3".
        steps = {s.lost.offset: s for s in rebuild_plan(seven, 0)}
        row3 = steps[3]
        assert sorted(a.disk for a in row3.reads) == [4, 5]
        assert row3.write.disk == 3
        # "row 5 indicates that disks 2 and 6 ... stored on disk 5".
        row5 = steps[5]
        assert sorted(a.disk for a in row5.reads) == [2, 6]
        assert row5.write.disk == 5
        # "we access disks 1 and 3 according to row 6 ... stored on disk 6".
        row6 = steps[6]
        assert sorted(a.disk for a in row6.reads) == [1, 3]
        assert row6.write.disk == 6

    def test_no_writes_without_sparing(self):
        layout = make_layout("raid5", 5, 5)
        for step in rebuild_plan(layout, 1):
            assert step.write is None

    def test_invalid_disk(self, seven):
        with pytest.raises(ConfigurationError):
            list(rebuild_plan(seven, 9))


class TestTallies:
    def test_matches_permutation_tally(self, seven):
        perm_tally = seven.group.combined_tally(0)
        plan_tally = rebuild_read_tally(seven, 0)
        assert perm_tally == plan_tally

    def test_write_tally_total(self, seven):
        writes = rebuild_write_tally(seven, 0)
        assert sum(writes.values()) == 6

    @pytest.mark.parametrize(
        "name,k", [("pddl", 4), ("datum", 4), ("prime", 4), ("parity-declustering", 4)]
    )
    def test_declustered_layouts_have_zero_deviation(self, name, k):
        layout = make_layout(name, 13, k)
        assert reconstruction_deviation(layout) == 0

    def test_raid5_doubles_survivor_load(self):
        layout = make_layout("raid5", 13, 13)
        tally = rebuild_read_tally(layout, 0)
        # Every survivor reads once per lost unit: n-1 units + ... each of
        # the period's 13 lost units needs all 12 survivors.
        assert set(tally.values()) == {13}
