"""Tests for hill-climbing permutation search."""

import pytest

from repro.core.development import XorDevelopment
from repro.core.permutation import BasePermutation, PermutationGroup
from repro.core.search import search_base_permutation, search_permutation_group
from repro.errors import SearchError


class TestSolitarySearch:
    def test_finds_for_prime_n(self):
        perm = search_base_permutation(2, 3, seed=1)
        assert perm.is_satisfactory()
        assert perm.n == 7

    def test_finds_for_composite_n(self):
        # n = 21 = 4*5 + 1; Table 1 records a solitary solution (k=5, g=4).
        perm = search_base_permutation(4, 5, seed=1)
        assert perm.is_satisfactory()

    def test_fails_where_group_needed(self):
        # n = 10, k = 3: the paper needed a pair; solitary search with a
        # small budget must raise rather than return junk.
        with pytest.raises(SearchError):
            search_base_permutation(3, 3, seed=1, restarts=6, max_steps=400)


class TestGroupSearch:
    def test_escalates_to_pair_for_n10(self):
        result = search_permutation_group(3, 3, seed=3)
        assert isinstance(result, PermutationGroup)
        assert result.p == 2
        assert result.is_satisfactory()

    def test_returns_solitary_when_possible(self):
        result = search_permutation_group(2, 3, seed=0)
        assert isinstance(result, BasePermutation)
        assert result.is_satisfactory()

    def test_fixed_p(self):
        result = search_permutation_group(2, 3, p=2, seed=0)
        assert isinstance(result, PermutationGroup)
        assert result.p == 2
        assert result.is_satisfactory()

    def test_deterministic_for_seed(self):
        a = search_permutation_group(2, 3, seed=42)
        b = search_permutation_group(2, 3, seed=42)
        assert a.values == b.values

    def test_xor_development_search(self):
        dev = XorDevelopment(8)
        result = search_permutation_group(1, 7, dev=dev, seed=0)
        assert result.is_satisfactory(dev)

    def test_budget_exhaustion_raises(self):
        with pytest.raises(SearchError):
            search_permutation_group(
                3, 3, p=1, seed=0, restarts=2, max_steps=50
            )
