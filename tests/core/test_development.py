"""Tests for development operators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.development import (
    DigitDevelopment,
    ModularDevelopment,
    XorDevelopment,
    development_for,
)
from repro.errors import ConfigurationError


class TestModular:
    def test_paper_example(self):
        # §2: "to obtain the permutation for the i-th row, we add i mod 7".
        dev = ModularDevelopment(7)
        base = (0, 1, 2, 4, 3, 6, 5)
        row1 = tuple(dev.shift(v, 1) for v in base)
        assert row1 == (1, 2, 3, 5, 4, 0, 6)
        row2 = tuple(dev.shift(v, 2) for v in base)
        assert row2 == (2, 3, 4, 6, 5, 1, 0)

    def test_shift_unshift_roundtrip(self):
        dev = ModularDevelopment(13)
        for v in range(13):
            for t in range(30):
                assert dev.unshift(dev.shift(v, t), t) == v

    def test_rejects_tiny_n(self):
        with pytest.raises(ConfigurationError):
            ModularDevelopment(1)


class TestXor:
    def test_needs_power_of_two(self):
        with pytest.raises(ConfigurationError):
            XorDevelopment(12)

    def test_is_involution(self):
        dev = XorDevelopment(16)
        for v in range(16):
            for t in range(16):
                assert dev.shift(dev.shift(v, t), t) == v

    def test_matches_paper_mask(self):
        # Appendix: "(permutation[disk] ^ offset) & 0xf".
        dev = XorDevelopment(16)
        assert dev.shift(0b1010, 0b0110) == 0b1100
        assert dev.shift(15, 17) == (15 ^ 17) & 0xF


class TestDigit:
    def test_gf9_example(self):
        dev = DigitDevelopment(3, 2)
        # (1,2) + (1,1) = (2,0)
        assert dev.shift(5, 4) == 6

    def test_shift_unshift_roundtrip(self):
        dev = DigitDevelopment(3, 2)
        for v in range(9):
            for t in range(9):
                assert dev.unshift(dev.shift(v, t), t) == v

    def test_reduces_to_xor_for_p2(self):
        digit = DigitDevelopment(2, 4)
        xor = XorDevelopment(16)
        for v in range(16):
            for t in range(16):
                assert digit.shift(v, t) == xor.shift(v, t)

    def test_rejects_m_zero(self):
        with pytest.raises(ConfigurationError):
            DigitDevelopment(3, 0)


class TestDevelopmentFor:
    def test_prime_gets_modular(self):
        assert isinstance(development_for(13), ModularDevelopment)

    def test_power_of_two_gets_xor(self):
        assert isinstance(development_for(16), XorDevelopment)

    def test_odd_prime_power_gets_digits(self):
        dev = development_for(9)
        assert isinstance(dev, DigitDevelopment)
        assert (dev.p, dev.m) == (3, 2)

    def test_composite_gets_modular(self):
        assert isinstance(development_for(10), ModularDevelopment)
        assert isinstance(development_for(55), ModularDevelopment)

    @given(st.integers(min_value=2, max_value=100))
    def test_group_axioms(self, n):
        dev = development_for(n)
        # shift by 0 is identity; shifting is a bijection per t.
        for v in range(min(n, 10)):
            assert dev.shift(v, 0) == v
        images = {dev.shift(v, 3) for v in range(n)}
        assert len(images) == n
