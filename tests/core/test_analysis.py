"""Tests for the analytic models, cross-checked against exact computation."""

import pytest

from repro.core.analysis import (
    declustering_ratio,
    degraded_read_inflation,
    expected_degraded_read_ops,
    expected_read_ops,
    rebuild_reads_per_pattern,
    super_stripe_units,
    surviving_disk_load_factor,
    write_cost,
)
from repro.core.reconstruction import rebuild_read_tally
from repro.errors import ConfigurationError
from repro.layouts import make_layout


@pytest.fixture(scope="module")
def pddl():
    return make_layout("pddl", 13, 4)


@pytest.fixture(scope="module")
def raid5():
    return make_layout("raid5", 13, 13)


class TestRatios:
    def test_declustering_ratio(self, pddl, raid5):
        assert declustering_ratio(raid5) == 1.0
        assert declustering_ratio(pddl) == pytest.approx(0.25)

    def test_load_factor_paper_motivation(self, pddl, raid5):
        assert surviving_disk_load_factor(raid5) == 2.0
        assert surviving_disk_load_factor(pddl) == 1.25

    def test_load_factor_matches_rebuild_tally(self, pddl):
        # The analytic alpha equals the exact per-survivor rebuild reads
        # divided by the failed disk's lost units.
        tally = rebuild_read_tally(pddl, 0)
        lost = pddl.period - 1  # one spare cell per pattern on any disk
        per_survivor = tally[1]
        assert per_survivor / lost == pytest.approx(
            declustering_ratio(pddl)
        )


class TestDegradedReadInflation:
    def test_matches_exact_average(self, pddl):
        from repro.array.raidops import ArrayMode
        from repro.stats.workingset import average_operation_count

        analytic = degraded_read_inflation(pddl)
        exact = average_operation_count(
            pddl, 1, False, mode=ArrayMode.DEGRADED, failed_disk=0
        )
        assert analytic == pytest.approx(exact, rel=0.05)

    def test_expected_ops_scale_linearly(self, pddl):
        assert expected_degraded_read_ops(pddl, 10) == pytest.approx(
            10 * degraded_read_inflation(pddl)
        )
        assert expected_read_ops(pddl, 10) == 10.0

    def test_validation(self, pddl):
        with pytest.raises(ConfigurationError):
            expected_read_ops(pddl, 0)
        with pytest.raises(ConfigurationError):
            expected_degraded_read_ops(pddl, 0)


class TestWriteCost:
    def test_matches_planner(self, pddl, raid5):
        from repro.array.raidops import plan_access

        for layout in (pddl, raid5):
            for m in range(1, layout.data_per_stripe + 1):
                cost = write_cost(layout, m)
                plan = plan_access(layout, 0, m, is_write=True)
                assert plan.operation_count() == cost.total, (layout.name, m)

    def test_raid5_48kb_small_write(self, raid5):
        cost = write_cost(raid5, 6)
        assert cost.pre_reads == 7 and cost.writes == 7

    def test_bounds(self, pddl):
        with pytest.raises(ConfigurationError):
            write_cost(pddl, 0)
        with pytest.raises(ConfigurationError):
            write_cost(pddl, 4)


class TestStructure:
    def test_super_stripe(self, pddl):
        assert super_stripe_units(pddl) == 13 - 3 - 1

    def test_super_stripe_needs_sparing(self, raid5):
        with pytest.raises(ConfigurationError):
            super_stripe_units(raid5)

    def test_rebuild_reads_match_tally(self, pddl):
        total = sum(rebuild_read_tally(pddl, 0).values())
        assert rebuild_reads_per_pattern(pddl) == total
