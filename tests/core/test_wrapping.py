"""Tests for the PDDL-over-DATUM wrapping extension."""

import pytest

from repro.core.bose import bose_base_permutation
from repro.core.layout import PDDLLayout
from repro.core.reconstruction import rebuild_read_tally
from repro.core.wrapping import WrappedLayout, wrapped_layout
from repro.errors import ConfigurationError, MappingError
from repro.layouts.address import PhysicalAddress, Role
from repro.layouts.properties import check_goal1, check_goal2, check_goal4


@pytest.fixture(scope="module")
def nine_over_seven():
    """Inner 7-disk PDDL wrapped over 9 physical disks."""
    inner = PDDLLayout(bose_base_permutation(2, 3, omega=3))
    return WrappedLayout(9, inner)


class TestStructure:
    def test_dimensions(self, nine_over_seven):
        lay = nine_over_seven
        assert lay.n == 9
        assert len(lay.outer_blocks) == 36  # C(9, 7)
        assert lay.period == 36 * 7
        lay.validate()

    def test_goal1_and_parity(self, nine_over_seven):
        assert check_goal1(nine_over_seven).satisfied
        assert check_goal2(nine_over_seven).satisfied
        assert check_goal4(nine_over_seven).satisfied

    def test_sparing_uniform(self, nine_over_seven):
        spares = nine_over_seven.spare_addresses_in_period()
        counts = [0] * 9
        for addr in spares:
            counts[addr.disk] += 1
        assert len(set(counts)) == 1

    def test_inner_must_be_smaller(self):
        inner = PDDLLayout(bose_base_permutation(2, 3))
        with pytest.raises(ConfigurationError):
            WrappedLayout(7, inner)


class TestRelocation:
    def test_member_relocation(self, nine_over_seven):
        lay = nine_over_seven
        # Find a data cell in band 0 (members are disks 0..6).
        addr = PhysicalAddress(1, 0)
        assert lay.locate(*addr).role is not Role.SPARE
        target = lay.relocation_target(addr)
        assert lay.locate(*target).role is Role.SPARE
        assert target.offset // lay.inner.period == 0  # same band

    def test_filler_relocation_rejected(self, nine_over_seven):
        # Disks 7, 8 are non-members of band 0 -> filler spare cells.
        with pytest.raises(MappingError):
            nine_over_seven.relocation_target(PhysicalAddress(8, 0))


class TestReconstruction:
    def test_load_spreads_beyond_inner_width(self, nine_over_seven):
        tally = rebuild_read_tally(nine_over_seven, 0)
        assert all(count > 0 for count in tally.values())
        deviation = max(tally.values()) - min(tally.values())
        # The outer CBD balances near-perfectly.
        assert deviation <= nine_over_seven.inner.k


class TestFactory:
    def test_paper_shape_30_disks(self):
        # §5: 30 disks, stripe width 7 -> inner PDDL with g=4, k=7, n=29.
        lay = wrapped_layout(30, 4, 7)
        assert lay.n == 30
        assert lay.inner.n == 29
        # C(30, 29) = 30 outer blocks: the complete design fits.
        assert len(lay.outer_blocks) == 30
        lay.validate()
        assert check_goal1(lay).satisfied
        assert check_goal2(lay).satisfied

    def test_truncated_outer_design(self):
        inner = PDDLLayout(bose_base_permutation(2, 3))
        lay = WrappedLayout(11, inner, max_outer_blocks=11)
        assert len(lay.outer_blocks) == 11
        lay.validate()

    def test_bad_max_blocks(self):
        inner = PDDLLayout(bose_base_permutation(2, 3))
        with pytest.raises(ConfigurationError):
            WrappedLayout(11, inner, max_outer_blocks=0)
