"""Tests for the paper's published permutations (core/tables)."""

import pytest

from repro.core import tables
from repro.core.development import XorDevelopment
from repro.core.permutation import BasePermutation, PermutationGroup
from repro.gf.prime import is_prime


class TestPublishedPermutations:
    def test_n7(self):
        perm = tables.published_group(7, 3)
        assert isinstance(perm, BasePermutation)
        assert perm.values == tables.PAPER_N7_K3
        assert perm.is_satisfactory()

    def test_n10_pair(self):
        group = tables.published_group(10, 3)
        assert isinstance(group, PermutationGroup)
        assert group.p == 2
        assert group.is_satisfactory()

    def test_n16(self):
        perm = tables.published_group(16, 5)
        assert perm.is_satisfactory(XorDevelopment(16))

    def test_n55_figure17_pair(self):
        group = tables.published_group(55, 6)
        assert isinstance(group, PermutationGroup)
        assert group.p == 2
        assert group.is_satisfactory()

    def test_n55_singles_are_only_almost_satisfactory(self):
        # Each Figure 17 permutation alone misses goal #3 (that is why the
        # paper needs the pair).
        group = tables.published_group(55, 6)
        for perm in group.permutations:
            assert not perm.is_satisfactory()
            assert perm.tally_deviation() <= 2

    def test_n13_experiment_calibration(self):
        perm = tables.published_group(13, 4)
        assert isinstance(perm, BasePermutation)
        assert perm.values == tables.PAPER_N13_K4_EXPERIMENT
        assert perm.is_satisfactory()
        # Checks cluster with the spare: non-data columns are {0, 12, 11, 6}.
        checks = {perm.values[c] for c in range(13) if perm.is_check_column(c)}
        assert checks == {12, 11, 6}

    def test_unknown_config_returns_none(self):
        assert tables.published_group(13, 3) is None
        assert tables.published_group(99, 7) is None


class TestTable1:
    def test_covers_full_grid(self):
        assert set(tables.PAPER_TABLE1) == {
            (k, g) for k in range(5, 11) for g in range(1, 11)
        }

    def test_prime_configs_are_solitary(self):
        # Wherever n = g*k + 1 is prime, Bose gives a solitary permutation
        # and Table 1 must record 1.
        for (k, g), value in tables.PAPER_TABLE1.items():
            if is_prime(g * k + 1):
                assert value == 1, (k, g)

    def test_figure17_consistency(self):
        # Figure 17's n = 55 pair corresponds to Table 1 cell (k=6, g=9).
        assert tables.PAPER_TABLE1[(6, 9)] == 2

    def test_n10_cell(self):
        # The paper's §2 ten-disk pair is (k=3, g=3) — outside Table 1's
        # k range, but its k=9, g=1 transpose-shaped cell must be solitary.
        assert tables.PAPER_TABLE1[(9, 1)] == 1
