"""Tests for multi-check stripes, multi-spare layouts, and multi-failure
reconstruction planning."""

import pytest

from repro.core.layout import PDDLLayout
from repro.core.multifailure import (
    degraded_read_cost,
    multi_rebuild_plan,
    multi_rebuild_read_tally,
    worst_case_tally_deviation,
)
from repro.core.permutation import BasePermutation
from repro.errors import ConfigurationError, MappingError
from repro.layouts.address import Role
from repro.layouts.properties import check_layout


@pytest.fixture(scope="module")
def pq_layout():
    """n = 10: two spares + two stripes of width 4 with 2 checks (P+Q).

    No solitary permutation can meet goal #3 with two spares (the
    divisibility (n-2)(k-1) mod (n-1) never works out for k < n), so the
    fixture uses a fixed scrambled permutation; these tests exercise the
    multi-failure machinery, not reconstruction balance.
    """
    perm = BasePermutation(
        (0, 5, 1, 8, 3, 9, 2, 7, 4, 6), k=4, spares=2, checks=2
    )
    return PDDLLayout(perm)


class TestMultiCheckPermutation:
    def test_bad_shape_rejected(self):
        # 11 - 2 spares = 9 is not a multiple of k = 4.
        with pytest.raises(ConfigurationError):
            BasePermutation(tuple(range(11)), k=4, spares=2, checks=2)

    def test_valid_multicheck(self):
        perm = BasePermutation(tuple(range(10)), k=4, spares=2, checks=2)
        assert perm.is_check_column(4) and perm.is_check_column(5)
        assert not perm.is_check_column(2)
        assert not perm.is_check_column(0)  # spare
        assert perm.checks == 2

    def test_checks_out_of_range(self):
        with pytest.raises(ConfigurationError):
            BasePermutation(tuple(range(10)), k=4, spares=2, checks=4)
        with pytest.raises(ConfigurationError):
            BasePermutation(tuple(range(10)), k=4, spares=2, checks=0)


class TestPQLayout:
    def test_structure(self, pq_layout):
        assert pq_layout.checks == 2
        assert pq_layout.spares == 2
        assert pq_layout.data_per_stripe == 2
        pq_layout.validate()

    def test_goal_profile(self, pq_layout):
        report = check_layout(pq_layout)
        met = report.goals_met()
        for goal in (1, 2, 4, 7):
            assert goal in met, goal

    def test_two_spare_cells_per_row(self, pq_layout):
        spares = pq_layout.spare_addresses_in_period()
        per_row = {}
        for addr in spares:
            per_row[addr.offset] = per_row.get(addr.offset, 0) + 1
        assert set(per_row.values()) == {2}

    def test_relocation_per_spare_column(self, pq_layout):
        addr = pq_layout.stripe_units_in_period(0).data[0]
        t0 = pq_layout.relocation_target(addr, spare_column=0)
        t1 = pq_layout.relocation_target(addr, spare_column=1)
        assert t0 != t1
        for t in (t0, t1):
            assert pq_layout.locate(*t).role is Role.SPARE
        with pytest.raises(MappingError):
            pq_layout.relocation_target(addr, spare_column=2)

    def test_virtual_disk_interface_consistent(self, pq_layout):
        for unit in range(pq_layout.data_units_per_period):
            column, offset = pq_layout.virtual_disk_of(unit)
            disk = pq_layout.virtual_to_physical(column, offset)
            from repro.layouts.address import PhysicalAddress

            assert pq_layout.data_unit_address(unit) == PhysicalAddress(
                disk, offset
            )


class TestMultiRebuildPlan:
    def test_double_failure_covers_all_lost_units(self, pq_layout):
        steps = list(multi_rebuild_plan(pq_layout, [0, 1]))
        lost_cells = {cell for s in steps for cell in s.lost}
        expected = {
            (d, o)
            for d in (0, 1)
            for o in range(pq_layout.period)
            if pq_layout.locate(d, o).role is not Role.SPARE
        }
        assert {(c.disk, c.offset) for c in lost_cells} == expected

    def test_reads_avoid_failed_disks(self, pq_layout):
        for step in multi_rebuild_plan(pq_layout, [0, 3]):
            assert all(a.disk not in (0, 3) for a in step.reads)
            assert len(step.reads) >= pq_layout.k - pq_layout.checks

    def test_spare_targets_distinct(self, pq_layout):
        for step in multi_rebuild_plan(pq_layout, [2, 7]):
            targets = list(step.lost.values())
            assert len(set(targets)) == len(targets)
            for target in targets:
                assert pq_layout.locate(*target).role is Role.SPARE

    def test_too_many_failures_rejected(self, pq_layout):
        with pytest.raises(ConfigurationError):
            list(multi_rebuild_plan(pq_layout, [0, 1, 2]))

    def test_duplicate_failures_rejected(self, pq_layout):
        with pytest.raises(ConfigurationError):
            list(multi_rebuild_plan(pq_layout, [0, 0]))

    def test_single_check_layout_rejects_double_failure(self):
        from repro.core.bose import bose_base_permutation

        single = PDDLLayout(bose_base_permutation(2, 3))
        with pytest.raises(ConfigurationError):
            list(multi_rebuild_plan(single, [0, 1]))

    def test_single_failure_matches_rebuild_plan(self):
        from repro.core.bose import bose_base_permutation
        from repro.core.reconstruction import rebuild_read_tally

        layout = PDDLLayout(bose_base_permutation(2, 3))
        multi = multi_rebuild_read_tally(layout, [0])
        single = rebuild_read_tally(layout, 0)
        assert multi == single


class TestTallies:
    def test_double_failure_tally_positive_everywhere(self, pq_layout):
        tally = multi_rebuild_read_tally(pq_layout, [0, 5])
        assert all(v > 0 for v in tally.values())

    def test_worst_case_deviation_small(self, pq_layout):
        deviation, combo = worst_case_tally_deviation(pq_layout, failures=2)
        assert deviation <= 2 * pq_layout.k
        assert len(combo) == 2

    def test_degraded_read_cost(self, pq_layout):
        assert degraded_read_cost(pq_layout, []) == 1.0
        one = degraded_read_cost(pq_layout, [0])
        two = degraded_read_cost(pq_layout, [0, 1])
        assert 1.0 < one < two
