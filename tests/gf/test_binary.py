"""Tests for GF(2^m) table-based arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.gf.binary import PAPER_GF16_MODULUS, BinaryField


@pytest.fixture(scope="module")
def gf16():
    return BinaryField(4, modulus=PAPER_GF16_MODULUS)


class TestConstruction:
    def test_reducible_modulus_rejected(self):
        with pytest.raises(FieldError):
            BinaryField(4, modulus=0b10001)  # x^4 + 1

    def test_wrong_degree_rejected(self):
        with pytest.raises(FieldError):
            BinaryField(4, modulus=0b111)

    def test_nonprimitive_generator_rejected(self):
        # x (= 2) has order 5 for the paper modulus.
        with pytest.raises(FieldError):
            BinaryField(4, modulus=PAPER_GF16_MODULUS, generator=2)

    def test_default_modulus_found(self):
        f = BinaryField(3)
        assert f.order == 8

    def test_m_zero_rejected(self):
        with pytest.raises(FieldError):
            BinaryField(0)


class TestPaperExample:
    def test_generator_power_sequence(self, gf16):
        # Appendix: successive powers of x+1 are 1 3 5 15 14 13 8 7 9 4 12
        # 11 2 6 10.
        assert gf16.generator_powers() == [
            1, 3, 5, 15, 14, 13, 8, 7, 9, 4, 12, 11, 2, 6, 10,
        ]

    def test_generator_is_x_plus_one(self, gf16):
        assert gf16.generator == 3


class TestArithmetic:
    def test_add_is_xor(self, gf16):
        assert gf16.add(0b1010, 0b0110) == 0b1100
        assert gf16.sub(0b1010, 0b0110) == 0b1100

    def test_neg_is_identity(self, gf16):
        for a in range(16):
            assert gf16.neg(a) == a

    def test_mul_by_zero(self, gf16):
        for a in range(16):
            assert gf16.mul(a, 0) == 0
            assert gf16.mul(0, a) == 0

    def test_inverse(self, gf16):
        for a in range(1, 16):
            assert gf16.mul(a, gf16.inverse(a)) == 1

    def test_inverse_of_zero(self, gf16):
        with pytest.raises(FieldError):
            gf16.inverse(0)

    def test_pow(self, gf16):
        for a in range(1, 16):
            acc = 1
            for e in range(16):
                assert gf16.pow(a, e) == acc
                acc = gf16.mul(acc, a)

    def test_pow_of_zero(self, gf16):
        assert gf16.pow(0, 0) == 1
        assert gf16.pow(0, 5) == 0
        with pytest.raises(FieldError):
            gf16.pow(0, -1)

    def test_log_antilog_roundtrip(self, gf16):
        for a in range(1, 16):
            assert gf16.pow(gf16.generator, gf16.log(a)) == a

    def test_log_of_zero(self, gf16):
        with pytest.raises(FieldError):
            gf16.log(0)

    def test_out_of_range_rejected(self, gf16):
        with pytest.raises(FieldError):
            gf16.add(16, 0)

    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
    )
    def test_field_axioms(self, a, b, c):
        f = BinaryField(4, modulus=PAPER_GF16_MODULUS)
        assert f.mul(a, b) == f.mul(b, a)
        assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))
        assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))


class TestEquality:
    def test_equal_fields(self):
        a = BinaryField(4, modulus=PAPER_GF16_MODULUS)
        b = BinaryField(4, modulus=PAPER_GF16_MODULUS)
        assert a == b
        assert hash(a) == hash(b)

    def test_different_m(self):
        assert BinaryField(3) != BinaryField(4)
