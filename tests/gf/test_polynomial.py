"""Tests for polynomial arithmetic over GF(p)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.gf.polynomial import Polynomial
from repro.gf.prime import PrimeField

GF2 = PrimeField(2)
GF3 = PrimeField(3)
GF5 = PrimeField(5)


def poly_strategy(field, max_degree=6):
    return st.lists(
        st.integers(min_value=0, max_value=field.order - 1),
        min_size=0,
        max_size=max_degree + 1,
    ).map(lambda cs: Polynomial(field, cs))


class TestConstruction:
    def test_trailing_zeros_trimmed(self):
        p = Polynomial(GF2, [1, 0, 1, 0, 0])
        assert p.coeffs == (1, 0, 1)
        assert p.degree == 2

    def test_zero_polynomial(self):
        z = Polynomial.zero(GF3)
        assert z.is_zero()
        assert z.degree == -1

    def test_invalid_coefficient(self):
        with pytest.raises(FieldError):
            Polynomial(GF2, [2])

    def test_int_roundtrip(self):
        for value in range(64):
            assert Polynomial.from_int(GF2, value).to_int() == value
        for value in range(81):
            assert Polynomial.from_int(GF3, value).to_int() == value


class TestArithmetic:
    def test_add_in_gf2_is_xor(self):
        a = Polynomial.from_int(GF2, 0b1011)
        b = Polynomial.from_int(GF2, 0b0110)
        assert (a + b).to_int() == 0b1101

    def test_mul_example(self):
        # (x + 1)^2 = x^2 + 1 over GF(2)
        xp1 = Polynomial(GF2, [1, 1])
        assert (xp1 * xp1).coeffs == (1, 0, 1)

    def test_divmod_identity(self):
        num = Polynomial(GF5, [3, 0, 2, 4, 1])
        den = Polynomial(GF5, [1, 2, 1])
        q, r = num.divmod(den)
        assert q * den + r == num
        assert r.degree < den.degree

    def test_division_by_zero_raises(self):
        with pytest.raises(FieldError):
            Polynomial(GF2, [1]).divmod(Polynomial.zero(GF2))

    def test_mixed_fields_rejected(self):
        with pytest.raises(FieldError):
            Polynomial(GF2, [1]) + Polynomial(GF3, [1])

    @given(poly_strategy(GF3), poly_strategy(GF3))
    def test_mul_commutes(self, a, b):
        assert a * b == b * a

    @given(poly_strategy(GF5), poly_strategy(GF5), poly_strategy(GF5))
    def test_distributive(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(poly_strategy(GF3), poly_strategy(GF3, max_degree=3))
    def test_divmod_roundtrip(self, a, b):
        if b.is_zero():
            return
        q, r = a.divmod(b)
        assert q * b + r == a
        assert r.degree < b.degree


class TestPowMod:
    def test_matches_naive(self):
        mod = Polynomial(GF2, [1, 1, 0, 0, 1])  # x^4 + x + 1
        base = Polynomial(GF2, [0, 1])
        acc = Polynomial.one(GF2)
        for e in range(20):
            assert base.pow_mod(e, mod) == acc
            acc = (acc * base) % mod

    def test_negative_exponent_rejected(self):
        with pytest.raises(FieldError):
            Polynomial(GF2, [0, 1]).pow_mod(-1, Polynomial(GF2, [1, 1]))


class TestGcd:
    def test_gcd_of_multiples(self):
        f = Polynomial(GF5, [1, 1])  # x + 1
        g = Polynomial(GF5, [2, 1])  # x + 2, coprime with x + 1 and x + 4
        a = f * g
        b = f * Polynomial(GF5, [3, 1])  # (x + 1)(x + 3)
        gcd = a.gcd(b)
        assert gcd % f == Polynomial.zero(GF5)
        assert gcd.degree == 1
        assert gcd.coeffs[-1] == 1  # monic


class TestIrreducibility:
    def test_paper_gf16_modulus_is_irreducible(self):
        # x^4 + x^3 + x^2 + x + 1, the appendix's modulus for n = 16.
        assert Polynomial(GF2, [1, 1, 1, 1, 1]).is_irreducible()

    def test_known_reducible(self):
        # x^4 + 1 = (x + 1)^4 over GF(2)
        assert not Polynomial(GF2, [1, 0, 0, 0, 1]).is_irreducible()

    def test_degree_one_always_irreducible(self):
        assert Polynomial(GF3, [2, 1]).is_irreducible()

    def test_constants_not_irreducible(self):
        assert not Polynomial(GF2, [1]).is_irreducible()
        assert not Polynomial.zero(GF2).is_irreducible()

    def test_gf2_degree2(self):
        # Only x^2 + x + 1 is irreducible of degree 2 over GF(2).
        irreducible = [
            Polynomial.from_int(GF2, v).coeffs
            for v in range(4, 8)
            if Polynomial.from_int(GF2, v).is_irreducible()
        ]
        assert irreducible == [(1, 1, 1)]

    def test_count_of_irreducibles_degree3_gf2(self):
        # There are exactly two: x^3+x+1 and x^3+x^2+1.
        count = sum(
            1
            for v in range(8, 16)
            if Polynomial.from_int(GF2, v).is_irreducible()
        )
        assert count == 2
