"""Tests for general extension fields GF(p^m)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.gf.binary import PAPER_GF16_MODULUS, BinaryField
from repro.gf.extension import ExtensionField


@pytest.fixture(scope="module")
def gf9():
    return ExtensionField(3, 2)


@pytest.fixture(scope="module")
def gf25():
    return ExtensionField(5, 2)


class TestConstruction:
    def test_rejects_composite_p(self):
        with pytest.raises(FieldError):
            ExtensionField(4, 2)

    def test_rejects_m_zero(self):
        with pytest.raises(FieldError):
            ExtensionField(3, 0)

    def test_rejects_reducible_modulus(self):
        # x^2 + 2x + 1 = (x+1)^2 over GF(3): int encoding 1 + 2*3 + 9 = 16.
        with pytest.raises(FieldError):
            ExtensionField(3, 2, modulus=16)

    def test_rejects_nonprimitive_generator(self):
        f = ExtensionField(3, 2)
        # Any element of order < 8; -1 has order 2.  Find one.
        squares = {f.mul(a, a) for a in range(1, 9)}
        nonprimitive = next(
            a for a in range(2, 9) if f.pow(a, 4) == 1
        )
        with pytest.raises(FieldError):
            ExtensionField(3, 2, modulus=f.modulus, generator=nonprimitive)
        assert squares  # silence linters


class TestArithmetic:
    def test_additive_group(self, gf9):
        for a in range(9):
            assert gf9.add(a, 0) == a
            assert gf9.add(a, gf9.neg(a)) == 0
            assert gf9.sub(a, a) == 0

    def test_multiplicative_group(self, gf9):
        for a in range(1, 9):
            assert gf9.mul(a, gf9.inverse(a)) == 1
        assert gf9.mul(0, 5) == 0

    def test_generator_spans_group(self, gf25):
        powers = gf25.generator_powers()
        assert sorted(powers) == list(range(1, 25))

    def test_log_exp_roundtrip(self, gf25):
        for a in range(1, 25):
            assert gf25.pow(gf25.generator, gf25.log(a)) == a

    def test_pow_edge_cases(self, gf9):
        assert gf9.pow(0, 0) == 1
        assert gf9.pow(0, 3) == 0
        with pytest.raises(FieldError):
            gf9.pow(0, -1)
        with pytest.raises(FieldError):
            gf9.inverse(0)
        with pytest.raises(FieldError):
            gf9.log(0)

    def test_out_of_range(self, gf9):
        with pytest.raises(FieldError):
            gf9.add(9, 0)

    @given(
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=8),
    )
    def test_field_axioms_gf9(self, a, b, c):
        f = ExtensionField(3, 2)
        assert f.mul(a, b) == f.mul(b, a)
        assert f.add(a, b) == f.add(b, a)
        assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))
        assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))


class TestConsistency:
    def test_matches_binary_field_for_p2(self):
        ext = ExtensionField(2, 4, modulus=PAPER_GF16_MODULUS, generator=3)
        bin_ = BinaryField(4, modulus=PAPER_GF16_MODULUS, generator=3)
        assert ext.generator_powers() == bin_.generator_powers()
        for a in range(16):
            for b in range(16):
                assert ext.add(a, b) == bin_.add(a, b)
                assert ext.mul(a, b) == bin_.mul(a, b)

    def test_addition_matches_digit_development(self):
        from repro.core.development import DigitDevelopment

        f = ExtensionField(3, 3)
        dev = DigitDevelopment(3, 3)
        for a in range(0, 27, 5):
            for t in range(0, 27, 7):
                assert f.add(a, t) == dev.shift(a, t)

    def test_equality(self):
        a = ExtensionField(3, 2)
        b = ExtensionField(3, 2)
        assert a == b and hash(a) == hash(b)
        assert a != ExtensionField(5, 2)
