"""Tests for primitive roots and irreducible polynomial search."""

import pytest

from repro.errors import FieldError
from repro.gf.polynomial import Polynomial
from repro.gf.prime import PrimeField
from repro.gf.primitives import (
    element_powers,
    find_irreducible,
    find_primitive_element,
    is_primitive_element,
    is_primitive_root,
    polynomial_order,
    primitive_root,
    primitive_roots,
)


class TestPrimitiveRoot:
    def test_paper_example_mod7(self):
        # Paper §3: "3 is a primitive element since 3^0=1, 3^1=3, 3^2=2,
        # 3^3=6, 3^4=4, 3^5=5".
        assert is_primitive_root(3, 7)
        powers = [pow(3, e, 7) for e in range(6)]
        assert powers == [1, 3, 2, 6, 4, 5]

    def test_smallest_roots(self):
        assert primitive_root(7) == 3
        assert primitive_root(13) == 2
        assert primitive_root(11) == 2
        assert primitive_root(41) == 6

    def test_root_generates_whole_group(self):
        for p in [5, 7, 11, 13, 23, 31]:
            w = primitive_root(p)
            assert {pow(w, e, p) for e in range(p - 1)} == set(range(1, p))

    def test_count_of_primitive_roots(self):
        # phi(phi(13)) = phi(12) = 4 primitive roots mod 13.
        assert len(list(primitive_roots(13))) == 4

    def test_nonprime_rejected(self):
        with pytest.raises(FieldError):
            is_primitive_root(2, 8)

    def test_zero_is_not_primitive(self):
        assert not is_primitive_root(0, 7)
        assert not is_primitive_root(7, 7)


class TestFindIrreducible:
    @pytest.mark.parametrize("p,m", [(2, 1), (2, 3), (2, 4), (3, 2), (5, 2), (2, 6)])
    def test_result_is_irreducible_monic(self, p, m):
        poly = find_irreducible(p, m)
        assert poly.degree == m
        assert poly.coeffs[-1] == 1
        assert poly.is_irreducible()

    def test_degree_zero_rejected(self):
        with pytest.raises(FieldError):
            find_irreducible(2, 0)


class TestPrimitiveElements:
    def test_paper_gf16(self):
        # Appendix: modulus x^4+x^3+x^2+x+1, generator x+1, powers
        # 1 3 5 15 14 13 8 7 9 4 12 11 2 6 10.
        gf2 = PrimeField(2)
        modulus = Polynomial(gf2, [1, 1, 1, 1, 1])
        generator = Polynomial(gf2, [1, 1])
        assert is_primitive_element(generator, modulus)
        assert element_powers(generator, modulus) == [
            1, 3, 5, 15, 14, 13, 8, 7, 9, 4, 12, 11, 2, 6, 10,
        ]

    def test_x_is_not_primitive_for_paper_modulus(self):
        # x has order 5 modulo x^4+x^3+x^2+x+1 (it divides x^5 - 1).
        gf2 = PrimeField(2)
        modulus = Polynomial(gf2, [1, 1, 1, 1, 1])
        x = Polynomial.x(gf2)
        assert polynomial_order(x, modulus) == 5
        assert not is_primitive_element(x, modulus)

    def test_find_primitive_element(self):
        gf2 = PrimeField(2)
        modulus = Polynomial(gf2, [1, 1, 1, 1, 1])
        gen = find_primitive_element(modulus)
        assert is_primitive_element(gen, modulus)
        # Deterministic scan finds x+1 first for this modulus.
        assert gen.to_int() == 3

    def test_order_of_zero_raises(self):
        gf2 = PrimeField(2)
        modulus = Polynomial(gf2, [1, 1, 1])
        with pytest.raises(FieldError):
            polynomial_order(Polynomial.zero(gf2), modulus)

    def test_powers_enumerate_group(self):
        gf3 = PrimeField(3)
        modulus = find_irreducible(3, 2)
        gen = find_primitive_element(modulus)
        powers = element_powers(gen, modulus)
        assert len(powers) == 8
        assert sorted(powers) == list(range(1, 9))
