"""Unit and property tests for GF(p) arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.gf.prime import PrimeField, factorize, is_prime

PRIMES = [2, 3, 5, 7, 11, 13, 31, 61, 97]


class TestIsPrime:
    def test_small_values(self):
        expected = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}
        assert {p for p in range(50) if is_prime(p)} == expected

    def test_negative_and_zero(self):
        assert not is_prime(-7)
        assert not is_prime(0)
        assert not is_prime(1)

    def test_carmichael_number(self):
        assert not is_prime(561)
        assert not is_prime(41041)

    def test_large_prime(self):
        assert is_prime(2**31 - 1)
        assert not is_prime(2**32 - 1)


class TestFactorize:
    def test_examples(self):
        assert factorize(1) == {}
        assert factorize(12) == {2: 2, 3: 1}
        assert factorize(97) == {97: 1}

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            factorize(0)

    @given(st.integers(min_value=1, max_value=100_000))
    def test_product_reconstructs(self, value):
        product = 1
        for prime, exponent in factorize(value).items():
            assert is_prime(prime)
            product *= prime**exponent
        assert product == value


class TestPrimeField:
    def test_rejects_composite_order(self):
        with pytest.raises(FieldError):
            PrimeField(6)

    def test_add_sub_roundtrip(self):
        f = PrimeField(13)
        for a in range(13):
            for b in range(13):
                assert f.sub(f.add(a, b), b) == a

    def test_inverse(self):
        f = PrimeField(13)
        for a in range(1, 13):
            assert f.mul(a, f.inverse(a)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(FieldError):
            PrimeField(7).inverse(0)

    def test_out_of_range_element_rejected(self):
        f = PrimeField(7)
        with pytest.raises(FieldError):
            f.add(7, 0)
        with pytest.raises(FieldError):
            f.mul(-1, 3)

    def test_pow_negative_exponent(self):
        f = PrimeField(11)
        assert f.pow(3, -1) == f.inverse(3)
        assert f.mul(f.pow(3, -2), f.pow(3, 2)) == 1

    def test_element_order_divides_group(self):
        f = PrimeField(31)
        for a in range(1, 31):
            order = f.element_order(a)
            assert 30 % order == 0
            assert f.pow(a, order) == 1

    def test_element_order_of_generator(self):
        f = PrimeField(7)
        assert f.element_order(3) == 6  # 3 is a primitive root mod 7

    def test_equality_and_hash(self):
        assert PrimeField(7) == PrimeField(7)
        assert PrimeField(7) != PrimeField(11)
        assert len({PrimeField(7), PrimeField(7), PrimeField(11)}) == 2

    @given(
        st.sampled_from(PRIMES),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=200),
    )
    def test_ring_axioms(self, p, a, b, c):
        f = PrimeField(p)
        a, b, c = a % p, b % p, c % p
        assert f.add(a, b) == f.add(b, a)
        assert f.mul(a, b) == f.mul(b, a)
        assert f.add(f.add(a, b), c) == f.add(a, f.add(b, c))
        assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))
        assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))
