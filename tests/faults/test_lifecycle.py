"""ArrayLifecycle: the four-regime state machine over a live controller."""

import pytest

from repro.array.controller import ArrayController
from repro.array.raidops import ArrayMode
from repro.errors import SimulationError
from repro.faults import (
    ArrayLifecycle,
    FaultScenario,
    evaluate_second_failure,
)
from repro.layouts import make_layout
from repro.sim.engine import SimulationEngine

ALL_LAYOUTS = ("pddl", "datum", "prime", "parity-declustering", "raid5")


def build(layout_name="pddl", n=13, k=4):
    engine = SimulationEngine()
    controller = ArrayController(engine, make_layout(layout_name, n, k))
    return engine, controller


def run_lifecycle(layout_name="pddl", **scenario_kwargs):
    scenario_kwargs.setdefault("fault_time_ms", 100.0)
    scenario_kwargs.setdefault("rebuild_rows", 13)
    engine, controller = build(layout_name)
    lifecycle = ArrayLifecycle(
        controller, FaultScenario(**scenario_kwargs)
    )
    lifecycle.arm()
    engine.run()
    return engine, controller, lifecycle


class TestTransitions:
    def test_traverses_all_four_regimes(self):
        engine, controller, lifecycle = run_lifecycle(
            degraded_dwell_ms=50.0
        )
        modes = [mode for mode, _ in lifecycle.transitions]
        assert modes == [
            "fault-free",
            "degraded",
            "reconstruction",
            "post-reconstruction",
        ]
        assert lifecycle.complete
        assert controller.mode is ArrayMode.POST_RECONSTRUCTION

    def test_timestamps_are_monotonic_and_honor_the_dwell(self):
        _, _, lifecycle = run_lifecycle(degraded_dwell_ms=75.0)
        times = [t for _, t in lifecycle.transitions]
        assert times == sorted(times)
        by_mode = dict(lifecycle.transitions)
        assert by_mode["degraded"] == 100.0
        assert by_mode["reconstruction"] == 175.0
        assert by_mode["post-reconstruction"] > 175.0

    def test_transition_hook_fires_in_order(self):
        seen = []
        engine, controller = build()
        lifecycle = ArrayLifecycle(
            controller,
            FaultScenario(fault_time_ms=10.0, rebuild_rows=13),
            on_transition=lambda mode, t: seen.append(mode),
        )
        lifecycle.arm()
        engine.run()
        assert seen == [
            ArrayMode.DEGRADED,
            ArrayMode.RECONSTRUCTION,
            ArrayMode.POST_RECONSTRUCTION,
        ]

    def test_rebuild_step_hook_tracks_progress(self):
        fractions = []
        engine, controller = build()
        lifecycle = ArrayLifecycle(
            controller,
            FaultScenario(fault_time_ms=10.0, rebuild_rows=13),
            on_rebuild_step=lambda r: fractions.append(r.fraction_complete),
        )
        lifecycle.arm()
        engine.run()
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0
        assert len(fractions) == lifecycle.reconstructor.total_steps

    def test_replacement_rebuild_without_sparing(self):
        # Layouts without spare space rebuild onto a replacement spindle
        # and the controller ends back in fault-free mode; the lifecycle
        # still records the post-reconstruction regime.
        engine, controller, lifecycle = run_lifecycle(
            "parity-declustering", degraded_dwell_ms=25.0
        )
        modes = [mode for mode, _ in lifecycle.transitions]
        assert modes[-1] == "post-reconstruction"
        assert lifecycle.complete
        assert controller.mode is ArrayMode.FAULT_FREE
        assert controller.failed_disk is None


class TestModeAt:
    def test_mode_at_walks_the_transition_log(self):
        _, _, lifecycle = run_lifecycle(degraded_dwell_ms=50.0)
        rebuilt_at = dict(lifecycle.transitions)["post-reconstruction"]
        assert lifecycle.mode_at(0.0) == "fault-free"
        assert lifecycle.mode_at(99.9) == "fault-free"
        assert lifecycle.mode_at(100.0) == "degraded"
        assert lifecycle.mode_at(149.9) == "degraded"
        assert lifecycle.mode_at(150.0) == "reconstruction"
        assert lifecycle.mode_at(rebuilt_at + 1) == "post-reconstruction"


class TestGuards:
    def test_requires_a_fault_free_controller(self):
        engine, controller = build()
        controller.fail_disk(0)
        with pytest.raises(SimulationError):
            ArrayLifecycle(
                controller, FaultScenario(fault_time_ms=1.0)
            )

    def test_rejects_double_arm(self):
        engine, controller = build()
        lifecycle = ArrayLifecycle(
            controller, FaultScenario(fault_time_ms=1.0, rebuild_rows=13)
        )
        lifecycle.arm()
        with pytest.raises(SimulationError):
            lifecycle.arm()


class TestSecondFailure:
    @pytest.mark.parametrize("layout_name", ALL_LAYOUTS)
    def test_every_layout_terminates_and_classifies(self, layout_name):
        # A second whole-disk failure during the degraded dwell (empty
        # rebuild frontier): the run must terminate (no deadlock), end in
        # a definite state, and agree with the exact evaluation.
        engine, controller = build(layout_name)
        lifecycle = ArrayLifecycle(
            controller,
            FaultScenario(
                fault_time_ms=100.0,
                failed_disk=0,
                second_fault_time_ms=105.0,
                second_failed_disk=5,
                degraded_dwell_ms=10.0,
                rebuild_rows=13,
            ),
        )
        lifecycle.arm()
        engine.run()  # returning at all proves no deadlock
        expected = evaluate_second_failure(
            make_layout(layout_name, 13, 4), 0, 5, frozenset(), 13
        )
        assert lifecycle.data_loss == expected.data_loss
        assert len(lifecycle.second_faults) == 1
        record = lifecycle.second_faults[0]
        assert record["disk"] == 5
        assert record["during"] == "degraded"
        if expected.data_loss:
            assert lifecycle.lost_units == expected.lost_units
            assert controller.mode is ArrayMode.DATA_LOSS
            assert controller.data_loss_reason
            assert lifecycle.transitions[-1][0] == "data-loss"
            from repro.array.controller import LogicalAccess

            with pytest.raises(SimulationError):
                controller.submit(
                    LogicalAccess(99, 0, 1, False), lambda a, t: None
                )
        else:
            assert lifecycle.complete
            assert lifecycle.lost_units == 0

    def test_raid5_second_failure_is_always_fatal(self):
        engine, controller = build("raid5")
        lifecycle = ArrayLifecycle(
            controller,
            FaultScenario(
                fault_time_ms=100.0,
                failed_disk=0,
                second_fault_time_ms=101.0,
                second_failed_disk=7,
                rebuild_rows=13,
            ),
        )
        lifecycle.arm()
        engine.run()
        assert lifecycle.data_loss
        # Every un-rebuilt row loses two members of the same stripe.
        assert lifecycle.lost_units > 0
        assert lifecycle.data_loss_ms is not None

    def test_survivable_mid_rebuild_hit_folds_into_the_sweep(self):
        # On 13-disk PDDL with the first fault at 10 ms and rebuild from
        # 10 ms, a second failure at 500 ms lands mid-sweep; disk pairs
        # whose shared stripes are all rebuilt survive and the sweep
        # absorbs the extra repair steps.
        for second in range(1, 13):
            if second == 2:
                continue
            engine, controller = build()
            lifecycle = ArrayLifecycle(
                controller,
                FaultScenario(
                    fault_time_ms=10.0,
                    failed_disk=2,
                    second_fault_time_ms=500.0,
                    second_failed_disk=second,
                    rebuild_rows=26,
                ),
            )
            lifecycle.arm()
            engine.run()
            assert lifecycle.data_loss or lifecycle.complete
            if lifecycle.data_loss:
                continue
            recon = lifecycle.reconstructor
            # The sweep grew past the first failure's own 24 steps.
            assert recon.total_steps > 24
            assert recon.steps_completed == recon.total_steps
            assert lifecycle.second_faults[0]["during"] in (
                "degraded",
                "reconstruction",
            )
            return
        pytest.fail("no survivable mid-rebuild second failure found")

    def test_post_reconstruction_failure_starts_a_new_cycle(self):
        # After PDDL's rebuild completes, a second failure consumes the
        # relocated mapping and rebuilds onto a replacement spindle.
        engine, controller = build()
        lifecycle = ArrayLifecycle(
            controller,
            FaultScenario(
                fault_time_ms=10.0,
                failed_disk=2,
                second_fault_time_ms=100000.0,
                second_failed_disk=7,
                rebuild_rows=26,
            ),
        )
        lifecycle.arm()
        engine.run()
        assert not lifecycle.data_loss
        modes = [mode for mode, _ in lifecycle.transitions]
        assert modes == [
            "fault-free",
            "degraded",
            "reconstruction",
            "post-reconstruction",
            "degraded",
            "reconstruction",
            "post-reconstruction",
        ]
        assert lifecycle.second_faults[0]["during"] == "post-reconstruction"
        # The replacement-spindle cycle ends with a working array.
        assert controller.mode is ArrayMode.FAULT_FREE
        assert controller.failed_disk is None

    def test_fatal_during_dwell_never_starts_a_rebuild(self):
        engine, controller = build("raid5")
        lifecycle = ArrayLifecycle(
            controller,
            FaultScenario(
                fault_time_ms=10.0,
                failed_disk=0,
                second_fault_time_ms=15.0,
                second_failed_disk=1,
                degraded_dwell_ms=50.0,
                rebuild_rows=13,
            ),
        )
        lifecycle.arm()
        engine.run()
        assert lifecycle.data_loss
        assert lifecycle.reconstructor is None
        modes = [mode for mode, _ in lifecycle.transitions]
        assert modes == ["fault-free", "degraded", "data-loss"]

    def test_second_failure_outcome_is_deterministic(self):
        def run_once():
            engine, controller = build()
            lifecycle = ArrayLifecycle(
                controller,
                FaultScenario(
                    fault_time_ms=10.0,
                    failed_disk=2,
                    second_fault_time_ms=500.0,
                    second_failed_disk=7,
                    rebuild_rows=26,
                ),
            )
            lifecycle.arm()
            engine.run()
            return (
                lifecycle.transitions,
                lifecycle.second_faults,
                lifecycle.lost_units,
            )

        assert run_once() == run_once()
