"""ArrayLifecycle: the four-regime state machine over a live controller."""

import pytest

from repro.array.controller import ArrayController
from repro.array.raidops import ArrayMode
from repro.errors import SimulationError
from repro.faults import ArrayLifecycle, FaultScenario
from repro.layouts import make_layout
from repro.sim.engine import SimulationEngine


def build(layout_name="pddl", n=13, k=4):
    engine = SimulationEngine()
    controller = ArrayController(engine, make_layout(layout_name, n, k))
    return engine, controller


def run_lifecycle(layout_name="pddl", **scenario_kwargs):
    scenario_kwargs.setdefault("fault_time_ms", 100.0)
    scenario_kwargs.setdefault("rebuild_rows", 13)
    engine, controller = build(layout_name)
    lifecycle = ArrayLifecycle(
        controller, FaultScenario(**scenario_kwargs)
    )
    lifecycle.arm()
    engine.run()
    return engine, controller, lifecycle


class TestTransitions:
    def test_traverses_all_four_regimes(self):
        engine, controller, lifecycle = run_lifecycle(
            degraded_dwell_ms=50.0
        )
        modes = [mode for mode, _ in lifecycle.transitions]
        assert modes == [
            "fault-free",
            "degraded",
            "reconstruction",
            "post-reconstruction",
        ]
        assert lifecycle.complete
        assert controller.mode is ArrayMode.POST_RECONSTRUCTION

    def test_timestamps_are_monotonic_and_honor_the_dwell(self):
        _, _, lifecycle = run_lifecycle(degraded_dwell_ms=75.0)
        times = [t for _, t in lifecycle.transitions]
        assert times == sorted(times)
        by_mode = dict(lifecycle.transitions)
        assert by_mode["degraded"] == 100.0
        assert by_mode["reconstruction"] == 175.0
        assert by_mode["post-reconstruction"] > 175.0

    def test_transition_hook_fires_in_order(self):
        seen = []
        engine, controller = build()
        lifecycle = ArrayLifecycle(
            controller,
            FaultScenario(fault_time_ms=10.0, rebuild_rows=13),
            on_transition=lambda mode, t: seen.append(mode),
        )
        lifecycle.arm()
        engine.run()
        assert seen == [
            ArrayMode.DEGRADED,
            ArrayMode.RECONSTRUCTION,
            ArrayMode.POST_RECONSTRUCTION,
        ]

    def test_rebuild_step_hook_tracks_progress(self):
        fractions = []
        engine, controller = build()
        lifecycle = ArrayLifecycle(
            controller,
            FaultScenario(fault_time_ms=10.0, rebuild_rows=13),
            on_rebuild_step=lambda r: fractions.append(r.fraction_complete),
        )
        lifecycle.arm()
        engine.run()
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0
        assert len(fractions) == lifecycle.reconstructor.total_steps

    def test_replacement_rebuild_without_sparing(self):
        # Layouts without spare space rebuild onto a replacement spindle
        # and the controller ends back in fault-free mode; the lifecycle
        # still records the post-reconstruction regime.
        engine, controller, lifecycle = run_lifecycle(
            "parity-declustering", degraded_dwell_ms=25.0
        )
        modes = [mode for mode, _ in lifecycle.transitions]
        assert modes[-1] == "post-reconstruction"
        assert lifecycle.complete
        assert controller.mode is ArrayMode.FAULT_FREE
        assert controller.failed_disk is None


class TestModeAt:
    def test_mode_at_walks_the_transition_log(self):
        _, _, lifecycle = run_lifecycle(degraded_dwell_ms=50.0)
        rebuilt_at = dict(lifecycle.transitions)["post-reconstruction"]
        assert lifecycle.mode_at(0.0) == "fault-free"
        assert lifecycle.mode_at(99.9) == "fault-free"
        assert lifecycle.mode_at(100.0) == "degraded"
        assert lifecycle.mode_at(149.9) == "degraded"
        assert lifecycle.mode_at(150.0) == "reconstruction"
        assert lifecycle.mode_at(rebuilt_at + 1) == "post-reconstruction"


class TestGuards:
    def test_requires_a_fault_free_controller(self):
        engine, controller = build()
        controller.fail_disk(0)
        with pytest.raises(SimulationError):
            ArrayLifecycle(
                controller, FaultScenario(fault_time_ms=1.0)
            )

    def test_rejects_double_arm(self):
        engine, controller = build()
        lifecycle = ArrayLifecycle(
            controller, FaultScenario(fault_time_ms=1.0, rebuild_rows=13)
        )
        lifecycle.arm()
        with pytest.raises(SimulationError):
            lifecycle.arm()
