"""FaultScenario: validation, fault resolution, content hashing."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultScenario
from repro.faults.scenario import FAULT_SCENARIO_VERSION


class TestValidation:
    def test_needs_exactly_one_fault_source(self):
        with pytest.raises(ConfigurationError):
            FaultScenario()  # neither
        with pytest.raises(ConfigurationError):
            FaultScenario(fault_time_ms=100.0, mttf_hours=1000.0)  # both

    def test_rejects_bad_ranges(self):
        with pytest.raises(ConfigurationError):
            FaultScenario(fault_time_ms=-1.0)
        with pytest.raises(ConfigurationError):
            FaultScenario(mttf_hours=0.0)
        with pytest.raises(ConfigurationError):
            FaultScenario(fault_time_ms=10.0, degraded_dwell_ms=-5.0)
        with pytest.raises(ConfigurationError):
            FaultScenario(fault_time_ms=10.0, rebuild_parallel=0)
        with pytest.raises(ConfigurationError):
            FaultScenario(fault_time_ms=10.0, rebuild_throttle_ms=-1.0)
        with pytest.raises(ConfigurationError):
            FaultScenario(fault_time_ms=10.0, failed_disk=-1)


class TestDrawFault:
    def test_deterministic_scenario_is_literal(self):
        scenario = FaultScenario(failed_disk=3, fault_time_ms=250.0)
        assert scenario.draw_fault(13) == (250.0, 3)

    def test_seeded_draw_is_reproducible(self):
        scenario = FaultScenario(mttf_hours=1000.0, fault_seed=7)
        assert scenario.draw_fault(13) == scenario.draw_fault(13)

    def test_seed_changes_the_draw(self):
        a = FaultScenario(mttf_hours=1000.0, fault_seed=1).draw_fault(13)
        b = FaultScenario(mttf_hours=1000.0, fault_seed=2).draw_fault(13)
        assert a != b

    def test_earliest_disk_wins(self):
        scenario = FaultScenario(mttf_hours=1000.0, fault_seed=3)
        time_ms, disk = scenario.draw_fault(13)
        assert 0 <= disk < 13
        assert time_ms > 0
        # The winning lifetime is the minimum over per-disk draws.
        import random

        from repro.reliability import exponential_lifetime_ms

        draws = [
            exponential_lifetime_ms(
                1000.0, random.Random(f"3/disk-{d}")
            )
            for d in range(13)
        ]
        assert time_ms == min(draws)
        assert disk == draws.index(min(draws))


class TestHashing:
    def test_round_trip(self):
        scenario = FaultScenario(
            failed_disk=2,
            fault_time_ms=100.0,
            degraded_dwell_ms=50.0,
            rebuild_rows=40,
            rebuild_parallel=2,
            rebuild_throttle_ms=5.0,
        )
        assert FaultScenario.from_dict(scenario.to_dict()) == scenario

    def test_content_hash_is_stable_and_sensitive(self):
        a = FaultScenario(fault_time_ms=100.0)
        b = FaultScenario(fault_time_ms=100.0)
        c = FaultScenario(fault_time_ms=101.0)
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() != c.content_hash()
        assert len(a.content_hash()) == 64

    def test_version_is_part_of_the_hash(self):
        assert FAULT_SCENARIO_VERSION == 1
