"""FaultScenario: validation, fault resolution, content hashing."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultScenario
from repro.faults.scenario import FAULT_SCENARIO_VERSION


class TestValidation:
    def test_needs_exactly_one_fault_source(self):
        with pytest.raises(ConfigurationError):
            FaultScenario()  # neither
        with pytest.raises(ConfigurationError):
            FaultScenario(fault_time_ms=100.0, mttf_hours=1000.0)  # both

    def test_rejects_bad_ranges(self):
        with pytest.raises(ConfigurationError):
            FaultScenario(fault_time_ms=-1.0)
        with pytest.raises(ConfigurationError):
            FaultScenario(mttf_hours=0.0)
        with pytest.raises(ConfigurationError):
            FaultScenario(fault_time_ms=10.0, degraded_dwell_ms=-5.0)
        with pytest.raises(ConfigurationError):
            FaultScenario(fault_time_ms=10.0, rebuild_parallel=0)
        with pytest.raises(ConfigurationError):
            FaultScenario(fault_time_ms=10.0, rebuild_throttle_ms=-1.0)
        with pytest.raises(ConfigurationError):
            FaultScenario(fault_time_ms=10.0, failed_disk=-1)


class TestDrawFault:
    def test_deterministic_scenario_is_literal(self):
        scenario = FaultScenario(failed_disk=3, fault_time_ms=250.0)
        assert scenario.draw_fault(13) == (250.0, 3)

    def test_seeded_draw_is_reproducible(self):
        scenario = FaultScenario(mttf_hours=1000.0, fault_seed=7)
        assert scenario.draw_fault(13) == scenario.draw_fault(13)

    def test_seed_changes_the_draw(self):
        a = FaultScenario(mttf_hours=1000.0, fault_seed=1).draw_fault(13)
        b = FaultScenario(mttf_hours=1000.0, fault_seed=2).draw_fault(13)
        assert a != b

    def test_earliest_disk_wins(self):
        scenario = FaultScenario(mttf_hours=1000.0, fault_seed=3)
        time_ms, disk = scenario.draw_fault(13)
        assert 0 <= disk < 13
        assert time_ms > 0
        # The winning lifetime is the minimum over per-disk draws.
        import random

        from repro.reliability import exponential_lifetime_ms

        draws = [
            exponential_lifetime_ms(
                1000.0, random.Random(f"3/disk-{d}")
            )
            for d in range(13)
        ]
        assert time_ms == min(draws)
        assert disk == draws.index(min(draws))


class TestHashing:
    def test_round_trip(self):
        scenario = FaultScenario(
            failed_disk=2,
            fault_time_ms=100.0,
            degraded_dwell_ms=50.0,
            rebuild_rows=40,
            rebuild_parallel=2,
            rebuild_throttle_ms=5.0,
        )
        assert FaultScenario.from_dict(scenario.to_dict()) == scenario

    def test_content_hash_is_stable_and_sensitive(self):
        a = FaultScenario(fault_time_ms=100.0)
        b = FaultScenario(fault_time_ms=100.0)
        c = FaultScenario(fault_time_ms=101.0)
        assert a.content_hash() == b.content_hash()
        assert a.content_hash() != c.content_hash()
        assert len(a.content_hash()) == 64

    def test_version_is_part_of_the_hash(self):
        assert FAULT_SCENARIO_VERSION == 1

    def test_single_fault_hashes_are_pinned(self):
        # The multi-fault/media/scrub fields are omitted from the
        # canonical form at their inactive defaults, so scenarios from
        # before those fields existed keep their exact hashes (cache
        # compatibility).  Do not update these values: a mismatch means
        # every existing result cache silently invalidates.
        assert FaultScenario(fault_time_ms=100.0).content_hash() == (
            "161ebf7b6b155b6365a35c738b4a6396"
            "e2e62f32c07c41722ac77f62cf4fe40c"
        )
        assert FaultScenario(
            mttf_hours=1000.0, fault_seed=7
        ).content_hash() == (
            "126853b9774272acc645221c26ff3ae4"
            "51faa4c1c854c6c5386363fc0cbfc64e"
        )

    def test_multi_fault_fields_change_the_hash(self):
        base = FaultScenario(fault_time_ms=100.0)
        pair = FaultScenario(
            fault_time_ms=100.0,
            second_fault_time_ms=200.0,
            second_failed_disk=3,
        )
        lse = FaultScenario(fault_time_ms=100.0, lse_per_gb=10.0)
        assert len({s.content_hash() for s in (base, pair, lse)}) == 3

    def test_multi_fault_round_trip(self):
        scenario = FaultScenario(
            mttf_hours=500.0,
            fault_seed=9,
            max_faults=3,
            lse_per_gb=25.0,
            scrub_interval_ms=40.0,
            scrub_throttle_ms=2.0,
        )
        assert FaultScenario.from_dict(scenario.to_dict()) == scenario


class TestMultiFaultValidation:
    def test_scripted_second_fault_needs_both_fields(self):
        with pytest.raises(ConfigurationError):
            FaultScenario(fault_time_ms=10.0, second_fault_time_ms=20.0)
        with pytest.raises(ConfigurationError):
            FaultScenario(fault_time_ms=10.0, second_failed_disk=3)

    def test_second_fault_must_land_after_the_first(self):
        with pytest.raises(ConfigurationError):
            FaultScenario(
                fault_time_ms=10.0,
                second_fault_time_ms=10.0,
                second_failed_disk=3,
            )

    def test_second_fault_must_hit_a_new_disk(self):
        with pytest.raises(ConfigurationError):
            FaultScenario(
                failed_disk=3,
                fault_time_ms=10.0,
                second_fault_time_ms=20.0,
                second_failed_disk=3,
            )

    def test_max_faults_needs_mttf(self):
        with pytest.raises(ConfigurationError):
            FaultScenario(fault_time_ms=10.0, max_faults=2)
        with pytest.raises(ConfigurationError):
            FaultScenario(mttf_hours=100.0, max_faults=0)

    def test_scrub_and_lse_knobs_validate(self):
        with pytest.raises(ConfigurationError):
            FaultScenario(fault_time_ms=10.0, lse_per_gb=-1.0)
        with pytest.raises(ConfigurationError):
            FaultScenario(fault_time_ms=10.0, scrub_interval_ms=0.0)
        with pytest.raises(ConfigurationError):
            FaultScenario(fault_time_ms=10.0, scrub_throttle_ms=-1.0)


class TestDrawFaults:
    def test_scripted_pair_in_order(self):
        scenario = FaultScenario(
            failed_disk=2,
            fault_time_ms=100.0,
            second_fault_time_ms=250.0,
            second_failed_disk=7,
        )
        assert scenario.draw_faults(13) == [(100.0, 2), (250.0, 7)]
        assert scenario.multi_fault

    def test_single_fault_matches_draw_fault(self):
        scenario = FaultScenario(mttf_hours=1000.0, fault_seed=5)
        assert scenario.draw_faults(13) == [scenario.draw_fault(13)]
        assert not scenario.multi_fault

    def test_stochastic_draws_are_the_earliest_lifetimes(self):
        scenario = FaultScenario(
            mttf_hours=1000.0, fault_seed=11, max_faults=3
        )
        faults = scenario.draw_faults(13)
        assert len(faults) == 3
        times = [t for t, _ in faults]
        assert times == sorted(times)
        assert len({d for _, d in faults}) == 3
        # The selected failures are exactly the 3 shortest lifetimes of
        # the full per-disk draw.
        all_draws = sorted(
            FaultScenario(
                mttf_hours=1000.0, fault_seed=11, max_faults=13
            ).draw_faults(13)
        )
        assert faults == all_draws[:3]

    def test_draw_faults_replays_exactly(self):
        scenario = FaultScenario(
            mttf_hours=1000.0, fault_seed=4, max_faults=2
        )
        assert scenario.draw_faults(13) == scenario.draw_faults(13)
