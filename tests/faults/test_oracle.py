"""Unit tests for the generation-counter integrity oracle."""

from repro.array.controller import ArrayController, LogicalAccess
from repro.faults.crash import CrashInjector
from repro.faults.oracle import IntegrityOracle, StripeParityModel
from repro.layouts import make_layout
from repro.sim.engine import SimulationEngine


class TestStripeParityModel:
    def setup_method(self):
        self.layout = make_layout("raid5", 5, 5)
        self.model = StripeParityModel(self.layout)

    def test_fresh_array_is_consistent(self):
        assert self.model.is_consistent(0)

    def test_reconstruct_round_trips_when_consistent(self):
        self.model.plan_write(0, 4).apply_all()
        for unit in range(4):
            assert (
                self.model.reconstruct(0, unit) == self.model.stored[unit]
            )

    def test_delta_write_propagates_garbage_parity(self):
        # The conservative heart of the oracle: a small write updates
        # parity by *delta*, so pre-existing garbage parity stays garbage
        # after the write completes — completion never clears suspicion.
        model = self.model
        model.plan_write(0, 4).apply_all()
        model.parity[0] += 17  # the write hole left this stripe torn
        small = model.plan_write(1, 1)
        assert len(small.plan.phases) == 2  # read-modify-write
        small.apply_all()
        assert not model.is_consistent(0)
        # Only resync (recompute from data) repairs it.
        model.resync(0)
        assert model.is_consistent(0)


def run_torn_write():
    engine = SimulationEngine()
    layout = make_layout("raid5", 5, 5)
    controller = ArrayController(engine, layout)
    oracle = controller.attach_oracle(IntegrityOracle(layout))
    crash = CrashInjector(controller, at_boundary=0)
    crash.arm()
    controller.submit(LogicalAccess(0, 0, 1, True), lambda a, ms: None)
    engine.run()
    assert crash.fired
    return engine, layout, controller, oracle


class TestIntegrityOracleOnline:
    def test_clean_write_commits_without_suspicion(self):
        engine = SimulationEngine()
        layout = make_layout("raid5", 5, 5)
        controller = ArrayController(engine, layout)
        oracle = controller.attach_oracle(IntegrityOracle(layout))
        controller.submit(LogicalAccess(0, 0, 2, True), lambda a, ms: None)
        engine.run()
        report = oracle.verify()
        assert report["writes_begun"] == 1
        assert report["writes_committed"] == 1
        assert report["torn_writes"] == 0
        assert report["suspect_stripes"] == 0
        assert report["corruption_events"] == 0

    def test_torn_write_marks_its_stripes_suspect(self):
        _, _, _, oracle = run_torn_write()
        report = oracle.verify()
        assert report["torn_writes"] == 1
        assert report["writes_committed"] == 0
        assert report["suspect_stripes"] == 1
        assert report["corruption_events"] == 0  # not *served* yet

    def test_suspect_stripe_on_failed_chain_is_at_risk(self):
        _, layout, _, oracle = run_torn_write()
        suspect = next(iter(oracle.suspect))
        member = layout.stripe_units(suspect).data[0].disk
        outsider = next(
            d
            for d in range(layout.n)
            if d not in layout.stripe_units(suspect).disks()
        ) if len(set(layout.stripe_units(suspect).disks())) < layout.n else None
        assert oracle.verify(failed_disk=member)["at_risk_stripes"] == 1
        if outsider is not None:
            report = oracle.verify(failed_disk=outsider)
            assert report["at_risk_stripes"] == 0

    def test_reconstructed_read_through_suspect_parity_is_corruption(self):
        _, _, _, oracle = run_torn_write()
        suspect = next(iter(oracle.suspect))
        unit = next(iter(oracle.layout.data_units_of_stripe(suspect)))
        oracle.check_reconstructed_read(unit)
        report = oracle.verify()
        assert report["corruption_events"] == 1
        assert report["corruption_detail"][0]["kind"] == "reconstructed-read"

    def test_rebuild_of_suspect_data_is_corruption_but_parity_is_repair(
        self,
    ):
        _, _, _, oracle = run_torn_write()
        suspect = next(iter(oracle.suspect))
        oracle.check_rebuild_step(suspect, lost_is_data=False)
        assert oracle.corruption_count == 0
        assert suspect not in oracle.suspect  # parity recompute repaired
        oracle.suspect.add(suspect)
        oracle.check_rebuild_step(suspect, lost_is_data=True)
        assert oracle.corruption_count == 1

    def test_resync_clears_suspicion(self):
        _, _, _, oracle = run_torn_write()
        suspect = next(iter(oracle.suspect))
        oracle.note_resync(suspect)
        report = oracle.verify()
        assert report["suspect_stripes"] == 0
        assert report["resynced_stripes"] == 1
        # A degraded read through the repaired stripe is now safe.
        unit = next(iter(oracle.layout.data_units_of_stripe(suspect)))
        oracle.check_reconstructed_read(unit)
        assert oracle.verify()["corruption_events"] == 0
