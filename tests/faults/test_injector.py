"""FaultInjector: arming semantics and firing on the engine clock."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.faults import FaultInjector, FaultScenario
from repro.sim.engine import SimulationEngine


def make_injector(engine, hits, **scenario_kwargs):
    scenario = FaultScenario(**scenario_kwargs)
    return FaultInjector(
        engine,
        scenario,
        n_disks=13,
        on_failure=lambda disk, t: hits.append((disk, t)),
    )


class TestFaultInjector:
    def test_fires_at_the_scripted_time(self):
        engine = SimulationEngine()
        hits = []
        injector = make_injector(
            engine, hits, fault_time_ms=42.0, failed_disk=5
        )
        injector.arm()
        assert not injector.fired
        engine.run()
        assert hits == [(5, 42.0)]
        assert injector.fired
        assert injector.fired_ms == 42.0

    def test_resolves_stochastic_fault_at_construction(self):
        engine = SimulationEngine()
        injector = make_injector(
            engine, [], mttf_hours=1000.0, fault_seed=11
        )
        scenario = FaultScenario(mttf_hours=1000.0, fault_seed=11)
        assert (
            injector.fault_time_ms,
            injector.fault_disk,
        ) == scenario.draw_fault(13)

    def test_rejects_double_arm(self):
        # Double-arming is a caller bug, not a simulation outcome: the
        # error is a ConfigurationError and names the armed state.
        engine = SimulationEngine()
        injector = make_injector(engine, [], fault_time_ms=10.0)
        injector.arm()
        with pytest.raises(ConfigurationError, match="already armed"):
            injector.arm()

    def test_rejects_arm_after_fired(self):
        engine = SimulationEngine()
        injector = make_injector(engine, [], fault_time_ms=10.0)
        injector.arm()
        engine.run()
        assert injector.fired
        with pytest.raises(ConfigurationError, match="already armed"):
            injector.arm()

    def test_multi_fault_scenario_fires_in_order(self):
        engine = SimulationEngine()
        hits = []
        injector = make_injector(
            engine,
            hits,
            fault_time_ms=10.0,
            failed_disk=2,
            second_fault_time_ms=30.0,
            second_failed_disk=7,
        )
        injector.arm()
        engine.run()
        assert hits == [(2, 10.0), (7, 30.0)]
        assert injector.fired_ms == 10.0
        assert injector.fired_count == 2

    def test_rejects_fault_in_the_past(self):
        engine = SimulationEngine()
        engine.schedule(50.0, lambda: None)
        engine.run()
        injector = make_injector(engine, [], fault_time_ms=10.0)
        with pytest.raises(SimulationError):
            injector.arm()

    def test_out_of_range_disk_rejected_on_construction(self):
        engine = SimulationEngine()
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_injector(engine, [], fault_time_ms=1.0, failed_disk=13)
