"""Unit tests for controller crash injection."""

import pytest

from repro.array.controller import ArrayController, LogicalAccess
from repro.errors import ConfigurationError, SimulationError
from repro.faults.crash import CrashInjector
from repro.layouts import make_layout
from repro.sim.engine import SimulationEngine


def make_array():
    engine = SimulationEngine()
    controller = ArrayController(engine, make_layout("raid5", 5, 5))
    return engine, controller


class TestConfiguration:
    def test_exactly_one_trigger_required(self):
        _, controller = make_array()
        with pytest.raises(ConfigurationError, match="exactly one"):
            CrashInjector(controller)
        with pytest.raises(ConfigurationError, match="exactly one"):
            CrashInjector(controller, at_time_ms=5.0, at_boundary=1)

    def test_negative_parameters_rejected(self):
        _, controller = make_array()
        with pytest.raises(ConfigurationError):
            CrashInjector(controller, at_time_ms=-1.0)
        with pytest.raises(ConfigurationError):
            CrashInjector(controller, at_boundary=-1)
        with pytest.raises(ConfigurationError):
            CrashInjector(controller, seed=0, max_boundary=0)

    def test_double_arm_is_a_bug(self):
        _, controller = make_array()
        crash = CrashInjector(controller, at_boundary=0)
        crash.arm()
        with pytest.raises(SimulationError):
            crash.arm()


class TestSeededBoundary:
    def test_draw_is_deterministic_and_bounded(self):
        _, controller = make_array()
        draws = [
            CrashInjector(controller, seed=7, max_boundary=16).at_boundary
            for _ in range(3)
        ]
        assert len(set(draws)) == 1
        assert 0 <= draws[0] < 16

    def test_distinct_seeds_vary_the_placement(self):
        _, controller = make_array()
        draws = {
            CrashInjector(controller, seed=s, max_boundary=64).at_boundary
            for s in range(20)
        }
        assert len(draws) > 1


class TestFiring:
    def test_boundary_crash_tears_the_in_flight_write(self):
        engine, controller = make_array()
        crash = CrashInjector(controller, at_boundary=0)
        crash.arm()
        done = []
        # A 1-unit write is a two-phase read-modify-write: boundary 0
        # sits between its pre-reads and its data+parity writes.
        controller.submit(
            LogicalAccess(0, 0, 1, True), lambda a, ms: done.append(ms)
        )
        engine.run()
        assert crash.fired
        assert done == []  # the client never saw a completion
        assert crash.torn_accesses == 1
        assert crash.torn_stripes == [0]
        assert controller.torn_writes == 1
        record = crash.to_dict()
        assert record["fired"] is True
        assert record["crashed_at_ms"] == engine.now
        assert record["boundary"] == 0

    def test_scripted_time_crash_fires_with_idle_array(self):
        engine, controller = make_array()
        crash = CrashInjector(controller, at_time_ms=25.0)
        crash.arm()
        engine.run()
        assert crash.fired
        assert crash.crashed_at_ms == 25.0
        assert crash.torn_accesses == 0 and crash.torn_stripes == []

    def test_crash_drops_every_pending_event(self):
        engine, controller = make_array()
        crash = CrashInjector(controller, at_time_ms=0.001)
        crash.arm()
        controller.submit(
            LogicalAccess(0, 0, 1, True), lambda a, ms: None
        )
        engine.run()
        # The write's mechanical completions were scheduled and must
        # vanish in the power loss.
        assert crash.dropped_events > 0
        assert engine.now == 0.001

    def test_boundary_past_the_workload_never_fires(self):
        engine, controller = make_array()
        crash = CrashInjector(controller, at_boundary=1000)
        crash.arm()
        done = []
        controller.submit(
            LogicalAccess(0, 0, 1, True), lambda a, ms: done.append(ms)
        )
        engine.run()
        assert not crash.fired
        assert len(done) == 1  # the write completed normally
