"""Tests for the nemesis schedule grammar and fault tracker."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.nemesis import (
    EVENT_KINDS,
    ActiveFaultTracker,
    NemesisEvent,
    NemesisSchedule,
)


def drawn(seed=7, **kwargs):
    return NemesisSchedule.draw(seed, n_disks=13, rows=26, **kwargs)


class TestDraw:
    def test_always_contains_a_disk_failure(self):
        for seed in range(30):
            kinds = [e.kind for e in drawn(seed).events]
            assert "disk-failure" in kinds

    def test_events_are_time_ordered_inside_the_horizon(self):
        for seed in range(20):
            schedule = drawn(seed)
            times = [e.time_ms for e in schedule.events]
            assert times == sorted(times)
            assert all(0 <= t < schedule.horizon_ms for t in times)

    def test_failure_disks_distinct(self):
        for seed in range(30):
            disks = [
                e.disk for e in drawn(seed).events
                if e.kind == "disk-failure"
            ]
            assert len(disks) == len(set(disks))

    def test_crash_gap_respected(self):
        for seed in range(40):
            crashes = [
                e.time_ms for e in drawn(seed).events if e.kind == "crash"
            ]
            for a, b in zip(crashes, crashes[1:]):
                assert b - a >= drawn(seed).min_crash_gap_ms

    def test_caps_respected(self):
        schedule = drawn(
            11, max_disk_failures=1, max_crashes=0, max_lse_bursts=0,
            max_storms=0, max_scrub_windows=0,
        )
        assert [e.kind for e in schedule.events] == ["disk-failure"]

    def test_every_kind_eventually_drawn(self):
        # failslow and corruption-burst are opt-in (caps default to 0
        # for schedule-replay compatibility), so enable them for the
        # coverage sweep.
        seen = set()
        for seed in range(60):
            seen.update(
                e.kind
                for e in drawn(
                    seed, max_failslow=2, max_corruption_bursts=2
                ).events
            )
        assert seen == set(EVENT_KINDS)

    def test_zero_cap_keeps_old_schedules_byte_identical(self):
        # The corruption-burst block draws nothing at its zero-cap
        # default, so every pre-existing seed replays unchanged.
        for seed in range(20):
            old = drawn(seed)
            explicit = drawn(
                seed, max_corruption_bursts=0, corruption_rate=0.05
            )
            assert old.events == explicit.events

    def test_corruption_burst_draw_and_validation(self):
        schedule = drawn(3, max_corruption_bursts=3)
        bursts = [
            e for e in schedule.events if e.kind == "corruption-burst"
        ]
        for burst in bursts:
            assert 0 <= burst.disk < 13
            assert 0.0 < burst.rate <= 0.5
            assert burst.duration_ms > 0
        # Per-disk windows never overlap by construction.
        ends: dict = {}
        for burst in bursts:
            assert burst.time_ms >= ends.get(burst.disk, 0.0)
            ends[burst.disk] = burst.time_ms + burst.duration_ms

    def test_corruption_rate_validated(self):
        with pytest.raises(ConfigurationError):
            drawn(0, max_corruption_bursts=1, corruption_rate=0.0)
        with pytest.raises(ConfigurationError):
            drawn(0, max_corruption_bursts=1, corruption_rate=0.9)

    def test_bad_envelope_rejected(self):
        with pytest.raises(ConfigurationError):
            drawn(0, max_disk_failures=0)
        with pytest.raises(ConfigurationError):
            drawn(0, max_disk_failures=14)
        with pytest.raises(ConfigurationError):
            drawn(0, storm_rate=1.5)
        with pytest.raises(ConfigurationError):
            drawn(0, horizon_ms=0.0)


class TestFromEventsValidation:
    def test_scripted_schedule_round_trips(self):
        schedule = NemesisSchedule.from_events(
            [
                NemesisEvent(time_ms=100.0, kind="lse-burst",
                             cells=((2, 5), (3, 0))),
                NemesisEvent(time_ms=400.0, kind="disk-failure", disk=1),
                NemesisEvent(time_ms=1500.0, kind="crash"),
                NemesisEvent(time_ms=2000.0, kind="transient-storm",
                             rate=0.05, duration_ms=500.0),
                NemesisEvent(time_ms=3000.0, kind="scrub-off",
                             duration_ms=800.0),
            ],
            n_disks=13,
            rows=26,
        )
        clone = NemesisSchedule.from_dict(schedule.to_dict())
        assert clone == schedule
        assert clone.content_hash() == schedule.content_hash()

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            NemesisSchedule.from_events(
                [NemesisEvent(time_ms=10.0, kind="meteor-strike")],
                n_disks=13, rows=26,
            )

    def test_failure_disk_out_of_range(self):
        with pytest.raises(ConfigurationError, match="outside"):
            NemesisSchedule.from_events(
                [NemesisEvent(time_ms=10.0, kind="disk-failure", disk=13)],
                n_disks=13, rows=26,
            )

    def test_same_disk_cannot_fail_twice(self):
        with pytest.raises(ConfigurationError, match="twice"):
            NemesisSchedule.from_events(
                [
                    NemesisEvent(time_ms=10.0, kind="disk-failure", disk=3),
                    NemesisEvent(time_ms=90.0, kind="disk-failure", disk=3),
                ],
                n_disks=13, rows=26,
            )

    def test_crashes_too_close(self):
        with pytest.raises(ConfigurationError, match="closer"):
            NemesisSchedule.from_events(
                [
                    NemesisEvent(time_ms=100.0, kind="crash"),
                    NemesisEvent(time_ms=200.0, kind="crash"),
                ],
                n_disks=13, rows=26,
            )

    def test_burst_cell_outside_domain(self):
        with pytest.raises(ConfigurationError, match="domain"):
            NemesisSchedule.from_events(
                [NemesisEvent(time_ms=10.0, kind="lse-burst",
                              cells=((0, 26),))],
                n_disks=13, rows=26,
            )

    def test_overlapping_storms(self):
        with pytest.raises(ConfigurationError, match="verlapping storm"):
            NemesisSchedule.from_events(
                [
                    NemesisEvent(time_ms=100.0, kind="transient-storm",
                                 rate=0.01, duration_ms=1000.0),
                    NemesisEvent(time_ms=500.0, kind="transient-storm",
                                 rate=0.01, duration_ms=100.0),
                ],
                n_disks=13, rows=26,
            )

    def test_corruption_burst_disk_out_of_range(self):
        with pytest.raises(ConfigurationError, match="outside"):
            NemesisSchedule.from_events(
                [NemesisEvent(time_ms=10.0, kind="corruption-burst",
                              disk=13, rate=0.1, duration_ms=100.0)],
                n_disks=13, rows=26,
            )

    def test_corruption_burst_rate_bounds(self):
        with pytest.raises(ConfigurationError, match="rate"):
            NemesisSchedule.from_events(
                [NemesisEvent(time_ms=10.0, kind="corruption-burst",
                              disk=0, rate=0.6, duration_ms=100.0)],
                n_disks=13, rows=26,
            )

    def test_overlapping_corruption_bursts_same_disk(self):
        with pytest.raises(
            ConfigurationError, match="overlapping corruption-burst"
        ):
            NemesisSchedule.from_events(
                [
                    NemesisEvent(time_ms=100.0, kind="corruption-burst",
                                 disk=2, rate=0.1, duration_ms=1000.0),
                    NemesisEvent(time_ms=500.0, kind="corruption-burst",
                                 disk=2, rate=0.1, duration_ms=100.0),
                ],
                n_disks=13, rows=26,
            )

    def test_corruption_bursts_may_overlap_across_disks(self):
        NemesisSchedule.from_events(
            [
                NemesisEvent(time_ms=100.0, kind="corruption-burst",
                             disk=2, rate=0.1, duration_ms=1000.0),
                NemesisEvent(time_ms=500.0, kind="corruption-burst",
                             disk=3, rate=0.1, duration_ms=1000.0),
            ],
            n_disks=13, rows=26,
        )

    def test_storm_may_overlap_scrub_window(self):
        """Different window kinds only exclude their own kind."""
        NemesisSchedule.from_events(
            [
                NemesisEvent(time_ms=100.0, kind="transient-storm",
                             rate=0.01, duration_ms=1000.0),
                NemesisEvent(time_ms=500.0, kind="scrub-off",
                             duration_ms=1000.0),
            ],
            n_disks=13, rows=26,
        )

    def test_event_outside_horizon(self):
        with pytest.raises(ConfigurationError, match="outside"):
            NemesisSchedule.from_events(
                [NemesisEvent(time_ms=30000.0, kind="crash")],
                n_disks=13, rows=26,
            )

    def test_window_kind_needs_duration(self):
        with pytest.raises(ConfigurationError, match="duration"):
            NemesisSchedule.from_events(
                [NemesisEvent(time_ms=10.0, kind="scrub-off")],
                n_disks=13, rows=26,
            )
        with pytest.raises(ConfigurationError, match="duration"):
            NemesisSchedule.from_events(
                [NemesisEvent(time_ms=10.0, kind="crash",
                              duration_ms=100.0)],
                n_disks=13, rows=26,
            )


class TestSerialization:
    def test_drawn_schedule_round_trips(self):
        schedule = drawn(23)
        clone = NemesisSchedule.from_dict(schedule.to_dict())
        assert clone == schedule
        assert clone.seed == 23

    def test_hash_distinguishes_schedules(self):
        assert drawn(1).content_hash() != drawn(2).content_hash()

    def test_schema_version_checked(self):
        data = drawn(5).to_dict()
        data["schema"] = 99
        with pytest.raises(ConfigurationError, match="schema"):
            NemesisSchedule.from_dict(data)


class TestActiveFaultTracker:
    def test_begin_heal_lifecycle(self):
        tracker = ActiveFaultTracker()
        token = tracker.begin("crash", 100.0, detail="first")
        assert tracker.is_active("crash")
        assert tracker.active_kinds() == ["crash"]
        tracker.heal(token, 250.0)
        assert not tracker.is_active("crash")
        assert tracker.history == [
            {"kind": "crash", "begun_ms": 100.0, "healed_ms": 250.0,
             "detail": "first"}
        ]

    def test_double_heal_rejected(self):
        tracker = ActiveFaultTracker()
        token = tracker.begin("crash", 1.0)
        tracker.heal(token, 2.0)
        with pytest.raises(ConfigurationError):
            tracker.heal(token, 3.0)

    def test_concurrent_faults_of_different_kinds(self):
        tracker = ActiveFaultTracker()
        crash = tracker.begin("crash", 1.0)
        tracker.begin("disk-failure", 2.0)
        assert tracker.active_kinds() == ["crash", "disk-failure"]
        tracker.heal(crash, 3.0)
        assert tracker.active_kinds() == ["disk-failure"]

    def test_instantaneous_record(self):
        tracker = ActiveFaultTracker()
        tracker.record("lse-burst", 7.0, detail="3 cell(s)")
        assert not tracker.is_active("lse-burst")
        entry = tracker.history[0]
        assert entry["begun_ms"] == entry["healed_ms"] == 7.0

    def test_to_dict_reports_unhealed_faults(self):
        tracker = ActiveFaultTracker()
        tracker.begin("disk-failure", 5.0)
        data = tracker.to_dict()
        assert data["active"] == ["disk-failure"]
        assert data["history"][0]["healed_ms"] is None
