"""Latent sector errors and the background scrubber."""

import random

import pytest

from repro.array.controller import ArrayController
from repro.errors import ConfigurationError
from repro.faults import FaultScenario, MediaErrorMap, Scrubber
from repro.faults.media import poisson_draw
from repro.layouts import make_layout
from repro.sim.engine import SimulationEngine


class TestPoissonDraw:
    def test_zero_rate_draws_zero(self):
        assert poisson_draw(0.0, random.Random(1)) == 0

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            poisson_draw(-1.0, random.Random(1))

    def test_seeded_draws_replay(self):
        a = [poisson_draw(2.5, random.Random(s)) for s in range(20)]
        b = [poisson_draw(2.5, random.Random(s)) for s in range(20)]
        assert a == b

    def test_mean_tracks_lambda(self):
        rng = random.Random(7)
        draws = [poisson_draw(3.0, rng) for _ in range(2000)]
        assert 2.7 < sum(draws) / len(draws) < 3.3


class TestMediaErrorMap:
    def test_discovery_counts_each_cell_once(self):
        m = MediaErrorMap({0: {3, 5}})
        assert m.is_bad(0, 3) and m.is_bad(0, 3)
        assert not m.is_bad(0, 4)
        assert m.discovered == 1
        assert m.seeded == 2

    def test_repair_and_clear_account_separately(self):
        m = MediaErrorMap({1: {2, 7}})
        assert m.repair(1, 2)
        assert not m.repair(1, 2)  # already fixed
        assert m.clear(1, 7)
        assert m.remaining == 0
        assert m.repaired == 1 and m.overwritten == 1

    def test_from_rate_is_deterministic(self):
        a = MediaErrorMap.from_rate(13, 26, 8, 5000.0, seed=42)
        b = MediaErrorMap.from_rate(13, 26, 8, 5000.0, seed=42)
        assert a._bad == b._bad
        assert a.seeded > 0

    def test_per_disk_streams_are_stable_under_growth(self):
        # Adding disks must not reshuffle the errors of existing disks.
        small = MediaErrorMap.from_rate(5, 26, 8, 5000.0, seed=9)
        large = MediaErrorMap.from_rate(13, 26, 8, 5000.0, seed=9)
        for disk in range(5):
            assert small._bad.get(disk) == large._bad.get(disk)

    def test_zero_rate_seeds_nothing(self):
        m = MediaErrorMap.from_rate(13, 26, 8, 0.0, seed=0)
        assert m.seeded == 0 and m.remaining == 0


class TestScrubber:
    def build(self):
        engine = SimulationEngine()
        controller = ArrayController(engine, make_layout("pddl", 13, 4))
        return engine, controller

    def test_one_pass_repairs_every_seeded_error(self):
        engine, controller = self.build()
        media = MediaErrorMap({0: {1, 5}, 7: {3}})
        repairs = []
        scrubber = Scrubber(
            controller,
            media,
            interval_ms=10.0,
            rows=13,
            on_repair=lambda d, o: repairs.append((d, o)),
        )
        scrubber.start()
        engine.schedule(20000.0, engine.stop)
        engine.run()
        assert media.remaining == 0
        assert sorted(repairs) == [(0, 1), (0, 5), (7, 3)]
        assert scrubber.passes_completed >= 1
        assert scrubber.found == 3 and scrubber.repaired == 3

    def test_pauses_while_the_array_is_wounded(self):
        engine, controller = self.build()
        media = MediaErrorMap({3: {4}})
        scrubber = Scrubber(controller, media, interval_ms=10.0, rows=13)
        controller.fail_disk(0)  # degraded before the first pass begins
        scrubber.start()
        engine.schedule(500.0, engine.stop)
        engine.run()
        assert scrubber.cells_read == 0
        assert media.remaining == 1

    def test_rejects_double_start(self):
        engine, controller = self.build()
        scrubber = Scrubber(
            controller, MediaErrorMap({}), interval_ms=10.0, rows=13
        )
        scrubber.start()
        with pytest.raises(ConfigurationError):
            scrubber.start()

    def test_validates_knobs(self):
        engine, controller = self.build()
        with pytest.raises(ConfigurationError):
            Scrubber(controller, MediaErrorMap({}), interval_ms=0.0)
        with pytest.raises(ConfigurationError):
            Scrubber(
                controller,
                MediaErrorMap({}),
                interval_ms=5.0,
                throttle_ms=-1.0,
            )


class TestScrubbingSavesTheTrial:
    def test_unscrubbed_trial_loses_scrubbed_trial_survives(self):
        # Heavy LSE seeding and a fault an hour (of scrub passes) in:
        # without scrubbing the rebuild trips an unreadable sector and
        # the trial is lost; with scrubbing every error is repaired
        # before the rebuild needs the cells.
        from repro.experiments.campaign import run_campaign_trial

        def trial(scrub_interval_ms):
            scenario = FaultScenario(
                fault_time_ms=60000.0,
                failed_disk=0,
                rebuild_rows=26,
                lse_per_gb=20000.0,
                scrub_interval_ms=scrub_interval_ms,
            )
            return run_campaign_trial("pddl", scenario, seed=0)

        unscrubbed = trial(None)
        assert unscrubbed["classification"] == "lost"
        assert "unreadable sector" in unscrubbed["loss_reason"]
        assert unscrubbed["lost_units"] == 1

        scrubbed = trial(10.0)
        assert scrubbed["classification"] == "survived"
        assert scrubbed["media"]["remaining"] == 0
        assert scrubbed["media"]["repaired"] == scrubbed["media"]["seeded"]
        assert scrubbed["scrub"]["passes_completed"] >= 1
