"""FailSlowModel: profiles, onset, drive integration, nemesis kind."""

import pytest

from repro.disk.drive import DiskRequest
from repro.disk.hp2247 import make_hp2247
from repro.errors import ConfigurationError
from repro.faults.failslow import FailSlowModel
from repro.faults.nemesis import NemesisEvent, NemesisSchedule


class TestProfiles:
    def test_constant_before_and_after_onset(self):
        model = FailSlowModel(5.0, onset_ms=100.0)
        assert model.multiplier_at(0.0) == 1.0
        assert model.multiplier_at(99.999) == 1.0
        assert model.multiplier_at(100.0) == 5.0
        assert model.multiplier_at(1e9) == 5.0

    def test_duration_window_heals(self):
        model = FailSlowModel(5.0, onset_ms=100.0, duration_ms=50.0)
        assert model.multiplier_at(120.0) == 5.0
        assert model.multiplier_at(150.0) == 1.0
        assert not model.active_at(150.0)

    def test_ramp_climbs_linearly(self):
        model = FailSlowModel(
            5.0, onset_ms=0.0, profile="ramp", ramp_ms=100.0
        )
        assert model.multiplier_at(0.0) == 1.0
        assert model.multiplier_at(50.0) == pytest.approx(3.0)
        assert model.multiplier_at(100.0) == 5.0
        assert model.multiplier_at(200.0) == 5.0

    def test_intermittent_duty_cycle_is_deterministic(self):
        model = FailSlowModel(
            4.0, onset_ms=0.0, profile="intermittent",
            period_ms=10.0, duty=0.3,
        )
        assert model.multiplier_at(1.0) == 4.0   # phase 0.1 < 0.3
        assert model.multiplier_at(5.0) == 1.0   # phase 0.5 >= 0.3
        assert model.multiplier_at(11.0) == 4.0  # next period, same phase
        # Pure function of the clock: replays are exact.
        assert model.multiplier_at(5.0) == model.multiplier_at(5.0)

    def test_drawn_onset_is_seeded(self):
        a = FailSlowModel(5.0, seed="s/fs-1", onset_window_ms=1000.0)
        b = FailSlowModel(5.0, seed="s/fs-1", onset_window_ms=1000.0)
        c = FailSlowModel(5.0, seed="s/fs-2", onset_window_ms=1000.0)
        assert a.onset_ms == b.onset_ms
        assert a.onset_ms != c.onset_ms
        assert 0.0 <= a.onset_ms < 1000.0

    def test_report_shape(self):
        model = FailSlowModel(
            5.0, onset_ms=10.0, profile="intermittent",
            period_ms=8.0, duty=0.25, duration_ms=40.0,
        )
        report = model.report()
        assert report == {
            "multiplier": 5.0,
            "onset_ms": 10.0,
            "profile": "intermittent",
            "applications": 0,
            "period_ms": 8.0,
            "duty": 0.25,
            "duration_ms": 40.0,
        }


class TestValidation:
    def test_rejects_deflation(self):
        with pytest.raises(ConfigurationError):
            FailSlowModel(0.5)

    def test_rejects_unknown_profile(self):
        with pytest.raises(ConfigurationError):
            FailSlowModel(5.0, profile="spiky")

    def test_ramp_needs_ramp_ms(self):
        with pytest.raises(ConfigurationError):
            FailSlowModel(5.0, profile="ramp")

    def test_intermittent_needs_period_and_duty(self):
        with pytest.raises(ConfigurationError):
            FailSlowModel(5.0, profile="intermittent")
        with pytest.raises(ConfigurationError):
            FailSlowModel(
                5.0, profile="intermittent", period_ms=10.0, duty=0.0
            )

    def test_rejects_bad_windows(self):
        with pytest.raises(ConfigurationError):
            FailSlowModel(5.0, onset_ms=-1.0)
        with pytest.raises(ConfigurationError):
            FailSlowModel(5.0, duration_ms=0.0)
        with pytest.raises(ConfigurationError):
            FailSlowModel(5.0, seed=1, onset_window_ms=0.0)


class TestDriveIntegration:
    def _serve(self, drive, lba=1000, now=0.0):
        return drive.service(
            DiskRequest(lba, 16, False, access_id=0), now_ms=now
        )

    def test_attached_model_inflates_service(self):
        plain = make_hp2247()
        slow = make_hp2247()
        slow.fail_slow = FailSlowModel(5.0, onset_ms=0.0)
        base = self._serve(plain)
        inflated = self._serve(slow)
        assert inflated.seek_ms == pytest.approx(base.seek_ms * 5.0)
        assert inflated.latency_ms == pytest.approx(base.latency_ms * 5.0)
        assert inflated.transfer_ms == pytest.approx(base.transfer_ms * 5.0)
        assert slow.fail_slow.applications == 1

    def test_model_before_onset_is_byte_identical(self):
        plain = make_hp2247()
        armed = make_hp2247()
        armed.fail_slow = FailSlowModel(5.0, onset_ms=1e9)
        for lba in (0, 5000, 123, 99_000):
            a = self._serve(plain, lba=lba, now=7.5)
            b = self._serve(armed, lba=lba, now=7.5)
            assert a == b
        assert armed.fail_slow.applications == 0

    def test_reference_path_matches_table_path_under_failslow(self):
        fast = make_hp2247()
        ref = make_hp2247()
        fast.fail_slow = FailSlowModel(3.0, onset_ms=0.0)
        ref.fail_slow = FailSlowModel(3.0, onset_ms=0.0)
        for lba, now in [(0, 0.0), (4096, 3.3), (77_000, 12.8)]:
            request = DiskRequest(lba, 24, False, access_id=0)
            assert fast.service(request, now) == ref.service_reference(
                request, now
            )

    def test_healed_window_restores_exact_timing(self):
        plain = make_hp2247()
        healed = make_hp2247()
        healed.fail_slow = FailSlowModel(
            5.0, onset_ms=0.0, duration_ms=10.0
        )
        # Same arm trajectory required for comparison: serve the same
        # request sequence on both, only the in-window one inflates.
        a1 = self._serve(plain, lba=2000, now=0.0)
        b1 = self._serve(healed, lba=2000, now=0.0)
        assert b1.total_ms == pytest.approx(a1.total_ms * 5.0)
        a2 = self._serve(plain, lba=2000, now=50.0)
        b2 = self._serve(healed, lba=2000, now=50.0)
        assert a2 == b2


def _failslow_event(time_ms=100.0, disk=1, multiplier=5.0, duration=500.0):
    return NemesisEvent(
        time_ms=time_ms,
        kind="failslow",
        disk=disk,
        duration_ms=duration,
        multiplier=multiplier,
    )


class TestNemesisFailslowKind:
    def test_default_draw_has_no_failslow_and_replays_identically(self):
        # The draw block is gated entirely behind max_failslow > 0, so
        # pre-existing seeds replay byte-identically.
        a = NemesisSchedule.draw(7, n_disks=13, rows=26)
        b = NemesisSchedule.draw(7, n_disks=13, rows=26, max_failslow=0)
        assert a.content_hash() == b.content_hash()
        assert not any(e.kind == "failslow" for e in a.events)

    def test_drawn_failslow_windows_validate_and_replay(self):
        found = False
        for seed in range(12):
            a = NemesisSchedule.draw(
                seed, n_disks=13, rows=26, max_failslow=2
            )
            b = NemesisSchedule.draw(
                seed, n_disks=13, rows=26, max_failslow=2
            )
            assert a.content_hash() == b.content_hash()
            for event in a.events:
                if event.kind == "failslow":
                    found = True
                    assert event.multiplier == 5.0
                    assert event.duration_ms > 0
                    assert 0 <= event.disk < 13
        assert found

    def test_scripted_failslow_round_trips(self):
        schedule = NemesisSchedule.from_events(
            [
                NemesisEvent(time_ms=50.0, kind="disk-failure", disk=0),
                _failslow_event(),
            ],
            n_disks=13,
            rows=26,
        )
        replayed = NemesisSchedule.from_dict(schedule.to_dict())
        assert replayed == schedule
        assert replayed.events[-1].multiplier == 5.0

    def test_rejects_bad_failslow_events(self):
        base = [NemesisEvent(time_ms=50.0, kind="disk-failure", disk=0)]
        with pytest.raises(ConfigurationError):
            NemesisSchedule.from_events(
                base + [_failslow_event(multiplier=1.0)],
                n_disks=13, rows=26,
            )
        with pytest.raises(ConfigurationError):
            NemesisSchedule.from_events(
                base + [_failslow_event(disk=99)], n_disks=13, rows=26
            )
        with pytest.raises(ConfigurationError):
            # A failslow event is a window: duration is mandatory.
            NemesisSchedule.from_events(
                base
                + [
                    NemesisEvent(
                        time_ms=100.0, kind="failslow", disk=1,
                        multiplier=5.0,
                    )
                ],
                n_disks=13, rows=26,
            )
        with pytest.raises(ConfigurationError):
            # Overlapping windows on the same disk are illegal...
            NemesisSchedule.from_events(
                base
                + [
                    _failslow_event(time_ms=100.0, disk=1),
                    _failslow_event(time_ms=300.0, disk=1),
                ],
                n_disks=13, rows=26,
            )
        # ...but overlap across distinct disks is fine.
        NemesisSchedule.from_events(
            base
            + [
                _failslow_event(time_ms=100.0, disk=1),
                _failslow_event(time_ms=300.0, disk=2),
            ],
            n_disks=13, rows=26,
        )


class TestNemesisTrialApplier:
    def _run(self, events, **kwargs):
        from repro.experiments.nemesistrial import run_nemesis_trial

        schedule = NemesisSchedule.from_events(
            events, n_disks=13, rows=26
        )
        return run_nemesis_trial("pddl", schedule, **kwargs)

    def test_failslow_applies_and_heals(self):
        record = self._run(
            [
                NemesisEvent(time_ms=200.0, kind="disk-failure", disk=0),
                _failslow_event(time_ms=400.0, disk=3, duration=800.0),
            ]
        )
        applied = [
            e for e in record["events"] if e["kind"] == "failslow"
        ]
        assert applied == [
            {
                "time_ms": 400.0,
                "kind": "failslow",
                "disk": 3,
                "duration_ms": 800.0,
                "multiplier": 5.0,
                "outcome": "applied",
            }
        ]
        assert record["failslow_windows"] == 1
        history = [
            h for h in record["faults"]["history"]
            if h["kind"] == "failslow"
        ]
        assert len(history) == 1
        assert history[0]["begun_ms"] == 400.0
        assert history[0]["healed_ms"] == pytest.approx(1200.0)

    def test_failslow_on_failed_disk_is_skipped(self):
        record = self._run(
            [
                NemesisEvent(time_ms=100.0, kind="disk-failure", disk=3),
                _failslow_event(time_ms=400.0, disk=3, duration=800.0),
            ]
        )
        skipped = [
            e for e in record["events"]
            if e["kind"] == "failslow" and e["outcome"] == "skipped"
        ]
        assert len(skipped) == 1
        assert skipped[0]["reason"] == "disk-failed"
        assert "failslow_windows" not in record

    def test_failslow_slows_the_array_measurably(self):
        base = self._run(
            [NemesisEvent(time_ms=5000.0, kind="disk-failure", disk=0)],
            max_samples=80,
        )
        slow = self._run(
            [
                NemesisEvent(time_ms=5000.0, kind="disk-failure", disk=0),
                NemesisEvent(
                    time_ms=0.0, kind="failslow", disk=1,
                    duration_ms=19000.0, multiplier=20.0,
                ),
            ],
            max_samples=80,
        )
        # Same workload, one gray-failing disk: the trial must take
        # strictly longer on the simulated clock to absorb its samples.
        assert (
            slow["transitions"][-1][1] > base["transitions"][-1][1]
            or slow["instrumentation"]["engine"]["events_processed"]
            != base["instrumentation"]["engine"]["events_processed"]
        )
