"""Parity-audit scrubbing: detection, repair, and degraded behavior."""

from repro.array.controller import ArrayController
from repro.faults.corruption import CorruptionModel
from repro.faults.media import MediaErrorMap
from repro.faults.oracle import IntegrityOracle
from repro.faults.scrubber import Scrubber, aggregate_scrub
from repro.layouts import Role, make_layout
from repro.sim.engine import SimulationEngine

ROWS = 26


def build():
    engine = SimulationEngine()
    controller = ArrayController(engine, make_layout("pddl", 13, 4))
    model = CorruptionModel(13, ROWS, seed="audit-test")
    controller.attach_corruption(model)
    controller.enable_checksums()
    return engine, controller, model


def find_cells(layout, role, count):
    cells = []
    for disk in range(layout.n):
        for offset in range(ROWS):
            if layout.locate(disk, offset).role is role:
                cells.append((disk, offset))
                if len(cells) == count:
                    return cells
    raise AssertionError(f"fewer than {count} {role} cells")


def run_audit(engine, controller, rows=ROWS, horizon_ms=20_000.0):
    scrubber = Scrubber(
        controller,
        MediaErrorMap({}),
        interval_ms=10.0,
        rows=rows,
        audit=True,
    )
    scrubber.start()
    engine.schedule(horizon_ms, engine.stop)
    engine.run()
    return scrubber


class TestAuditRepairs:
    def test_data_cells_reconstructed_from_stripe(self):
        engine, controller, model = build()
        cells = find_cells(controller.layout, Role.DATA, 3)
        for disk, offset in cells:
            model.pollute(disk, offset)
        scrubber = run_audit(engine, controller)
        assert scrubber.passes_completed >= 1
        assert scrubber.stripes_audited > 0
        assert scrubber.audit_mismatches >= len(cells)
        assert scrubber.audit_repairs >= len(cells)
        assert scrubber.audit_unrepairable == 0
        assert model.remaining == 0

    def test_spare_cells_rewritten_not_counted_unrepairable(self):
        """Spare cells have no stripe peers; the audit repair is a
        plain rewrite (fresh content + fresh metadata), never an
        unrepairable count."""
        engine, controller, model = build()
        cells = find_cells(controller.layout, Role.SPARE, 2)
        for disk, offset in cells:
            model.pollute(disk, offset)
        scrubber = run_audit(engine, controller)
        assert scrubber.audit_mismatches >= len(cells)
        assert scrubber.audit_unrepairable == 0
        assert model.remaining == 0

    def test_clean_array_audits_without_mismatches(self):
        engine, controller, model = build()
        scrubber = run_audit(engine, controller, horizon_ms=2_000.0)
        assert scrubber.stripes_audited > 0
        assert scrubber.audit_mismatches == 0
        assert scrubber.audit_repairs == 0

    def test_detection_feeds_the_model_ledger(self):
        engine, controller, model = build()
        disk, offset = find_cells(controller.layout, Role.DATA, 1)[0]
        model.pollute(disk, offset)
        run_audit(engine, controller)
        report = model.report()
        assert report["detected_total"] >= 1
        assert report["silent_total"] == 0
        assert report["repaired"]["parity-pollution"] >= 1


class TestAuditWhileDegraded:
    def test_audit_pauses_and_oracle_stays_clean(self):
        """A scrub audit never runs against a degraded array: the
        scrubber cedes bandwidth, no mismatch is consumed or repaired,
        and the oracle records no corruption and no suspect stripes
        from the paused audit."""
        engine, controller, model = build()
        oracle = controller.attach_oracle(
            IntegrityOracle(controller.layout)
        )
        disk, offset = find_cells(controller.layout, Role.DATA, 1)[0]
        model.pollute(disk, offset)
        controller.fail_disk((disk + 1) % controller.layout.n)
        scrubber = run_audit(engine, controller, horizon_ms=2_000.0)
        assert scrubber.stripes_audited == 0
        assert scrubber.audit_repairs == 0
        assert model.remaining == 1  # latent, untouched
        report = oracle.verify(failed_disk=(disk + 1) % 13)
        assert report["corruption_events"] == 0
        assert report["suspect_stripes"] == 0
        assert "disk_corruption" not in report

    def test_audit_resumes_after_reconstruction(self):
        """Once the rebuild completes (post-reconstruction mode for a
        distributed-sparing layout), the audit resumes from where it
        paused and clears the latent cell; the oracle classifies the
        consumption as detected-and-repaired, never silent."""
        engine, controller, model = build()
        oracle = controller.attach_oracle(
            IntegrityOracle(controller.layout)
        )
        disk, offset = find_cells(controller.layout, Role.DATA, 1)[0]
        model.pollute(disk, offset)
        # Fail a disk outside the corrupt cell's stripe: after the
        # (skipped-ahead) rebuild the stripe has full redundancy, so
        # the resumed audit can reconstruct the cell from its peers.
        layout = controller.layout
        stripe = layout.locate(disk, offset).stripe
        members = {a.disk for a in layout.stripe_units(stripe).all_units()}
        failed = next(
            d for d in range(layout.n) if d not in members and d != disk
        )
        controller.fail_disk(failed)
        scrubber = Scrubber(
            controller,
            MediaErrorMap({}),
            interval_ms=10.0,
            rows=ROWS,
            audit=True,
        )
        scrubber.start()
        engine.schedule(500.0, controller.finish_reconstruction)
        engine.schedule(20_000.0, engine.stop)
        engine.run()
        assert scrubber.stripes_audited > 0
        assert scrubber.audit_mismatches >= 1
        assert model.remaining == 0
        report = oracle.verify()
        assert report["corruption_events"] == 0
        detected = report["disk_corruption"]["detected_and_repaired"]
        assert detected["parity-pollution"] >= 1


class TestAggregateScrub:
    def test_none_when_no_trial_scrubbed(self):
        assert aggregate_scrub([{"scrub": None}, {}]) is None

    def test_sums_counters_and_union_of_keys(self):
        records = [
            {
                "scrub": {
                    "passes_completed": 2,
                    "cells_read": 100,
                    "found": 1,
                    "repaired": 1,
                }
            },
            {
                "scrub": {
                    "passes_completed": 1,
                    "cells_read": 50,
                    "found": 0,
                    "repaired": 0,
                    "stripes_audited": 40,
                    "audit_mismatches": 3,
                    "audit_repairs": 3,
                    "audit_unrepairable": 0,
                }
            },
            {"scrub": None},
        ]
        total = aggregate_scrub(records)
        assert total["trials_reporting"] == 2
        assert total["passes_completed"] == 3
        assert total["cells_read"] == 150
        assert total["stripes_audited"] == 40
        assert total["audit_mismatches"] == 3
