"""Exact second-failure accounting, checked against brute force."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import evaluate_second_failure, second_failure_repair_steps
from repro.layouts import make_layout
from repro.layouts.address import Role

LAYOUTS = ("pddl", "datum", "prime", "parity-declustering", "raid5")


def brute_force_lost(layout, first, second, rebuilt, rows):
    """Count unrecoverable units by walking every stripe directly."""
    lost = 0
    for offset in range(rows):
        info = layout.locate(first, offset)
        if info.role is Role.SPARE:
            continue
        members = layout.stripe_units(info.stripe).all_units()
        touches = any(a.disk == second for a in members)
        if offset in rebuilt:
            if layout.has_sparing:
                target = layout.relocation_target(
                    type(members[0])(first, offset)
                )
                if target.disk == second and touches:
                    lost += 2
        elif touches:
            lost += 2
    return lost


class TestEvaluate:
    @pytest.mark.parametrize("layout_name", LAYOUTS)
    def test_matches_brute_force_empty_frontier(self, layout_name):
        layout = make_layout(layout_name, 13, 4)
        outcome = evaluate_second_failure(layout, 0, 5, frozenset(), 26)
        assert outcome.lost_units == brute_force_lost(
            layout, 0, 5, frozenset(), 26
        )
        assert outcome.data_loss == (outcome.lost_units > 0)

    @pytest.mark.parametrize("layout_name", LAYOUTS)
    def test_matches_brute_force_partial_frontier(self, layout_name):
        layout = make_layout(layout_name, 13, 4)
        frontier = frozenset(range(0, 26, 2))
        outcome = evaluate_second_failure(layout, 2, 9, frontier, 26)
        assert outcome.lost_units == brute_force_lost(
            layout, 2, 9, frontier, 26
        )

    def test_raid5_every_pair_is_fatal_unrebuilt(self):
        # k = n for RAID-5: every stripe spans every disk, so any second
        # failure before the sweep finishes loses every un-rebuilt row
        # twice over.
        layout = make_layout("raid5", 13, 4)
        outcome = evaluate_second_failure(layout, 0, 7, frozenset(), 26)
        assert outcome.data_loss
        assert outcome.lost_units == 2 * 26

    def test_pddl_fully_rebuilt_is_survivable_or_relost(self):
        # With the whole domain rebuilt into spare space, nothing is
        # doubly dead: the worst case is re-lost (copy on the casualty).
        layout = make_layout("pddl", 13, 4)
        for second in range(1, 13):
            outcome = evaluate_second_failure(
                layout, 0, second, frozenset(range(26)), 26
            )
            lost_rows = [
                o % layout.period
                for o in range(26)
                if o in outcome.relost_offsets
            ]
            assert not outcome.data_loss or outcome.lost_units > 0
            # Re-lost rows are exactly those whose spare target sits on
            # the second disk.
            for offset in outcome.relost_offsets:
                target = layout.relocation_target(
                    layout.stripe_units(
                        layout.locate(0, offset).stripe
                    ).all_units()[0].__class__(0, offset)
                )
                assert target.disk == second
            assert lost_rows == sorted(lost_rows)

    def test_is_deterministic(self):
        layout = make_layout("pddl", 13, 4)
        a = evaluate_second_failure(layout, 3, 8, frozenset({0, 4}), 26)
        b = evaluate_second_failure(layout, 3, 8, frozenset({0, 4}), 26)
        assert a == b

    def test_rejects_bad_arguments(self):
        layout = make_layout("pddl", 13, 4)
        with pytest.raises(ConfigurationError):
            evaluate_second_failure(layout, 4, 4, frozenset(), 13)
        with pytest.raises(ConfigurationError):
            evaluate_second_failure(layout, 0, 13, frozenset(), 13)
        with pytest.raises(ConfigurationError):
            evaluate_second_failure(layout, 0, 1, frozenset(), 0)


class TestRepairSteps:
    @pytest.mark.parametrize("layout_name", LAYOUTS)
    def test_reads_never_touch_either_dead_disk(self, layout_name):
        layout = make_layout(layout_name, 13, 4)
        # Find a survivable operating point: a fully-rebuilt frontier.
        frontier = frozenset(range(26))
        outcome = evaluate_second_failure(layout, 0, 6, frontier, 26)
        if outcome.data_loss:
            pytest.skip(f"{layout_name}: no survivable double fault here")
        steps = second_failure_repair_steps(
            layout, 0, 6, outcome.relost_offsets, frontier, 26
        )
        assert steps, "a whole dead disk must create repair work"
        for step in steps:
            for addr in step.reads:
                # Never the fresh casualty; the first disk's slot only
                # where the replacement/spare rebuild already holds the
                # data (sparing layouts redirect those reads entirely).
                assert addr.disk != 6, step
                if layout.has_sparing:
                    assert addr.disk != 0, step
                elif addr.disk == 0:
                    # In-domain offsets must already be rebuilt onto the
                    # replacement; out-of-domain offsets are intact by
                    # the truncated-sweep convention.
                    assert addr.offset in frontier or addr.offset >= 26, (
                        step
                    )

    def test_relost_units_are_reswept_to_their_spare_targets(self):
        layout = make_layout("pddl", 13, 4)
        frontier = frozenset(range(26))
        for second in range(1, 13):
            outcome = evaluate_second_failure(
                layout, 0, second, frontier, 26
            )
            if outcome.data_loss or not outcome.relost_offsets:
                continue
            steps = second_failure_repair_steps(
                layout, 0, second, outcome.relost_offsets, frontier, 26
            )
            relost_steps = [s for s in steps if s.lost.disk == 0]
            assert {s.lost.offset for s in relost_steps} == set(
                outcome.relost_offsets
            )
            for step in relost_steps:
                assert step.write is not None
                assert step.write.disk == second
            break
        else:
            pytest.fail("no relost case found on 13-disk PDDL")

    def test_second_disk_spare_cells_produce_no_steps(self):
        layout = make_layout("pddl", 13, 4)
        frontier = frozenset(range(26))
        outcome = evaluate_second_failure(layout, 0, 6, frontier, 26)
        steps = second_failure_repair_steps(
            layout, 0, 6, outcome.relost_offsets, frontier, 26
        )
        spare_rows = {
            offset
            for offset in range(26)
            if layout.locate(6, offset).role is Role.SPARE
        }
        second_steps = {s.lost.offset for s in steps if s.lost.disk == 6}
        assert second_steps.isdisjoint(spare_rows)
