"""Unit and property tests for the silent-corruption fault model."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.faults.corruption import (
    ALL_CORRUPTION_KINDS,
    CORRUPTION_KINDS,
    CorruptionModel,
)


class TestConstruction:
    def test_validates_knobs(self):
        with pytest.raises(ConfigurationError):
            CorruptionModel(0, 10, seed=0)
        with pytest.raises(ConfigurationError):
            CorruptionModel(4, 0, seed=0)
        with pytest.raises(ConfigurationError):
            CorruptionModel(4, 10, seed=0, lost_rate=-0.1)
        with pytest.raises(ConfigurationError):
            CorruptionModel(4, 10, seed=0, misdirected_rate=1.5)
        with pytest.raises(ConfigurationError):
            CorruptionModel(
                4, 10, seed=0, lost_rate=0.6, misdirected_rate=0.6
            )
        with pytest.raises(ConfigurationError):
            CorruptionModel(4, 10, seed=0, bitrot_cells=-1.0)
        with pytest.raises(ConfigurationError):
            CorruptionModel(
                4, 10, seed=0, bitrot_cells=1.0, bitrot_window_ms=0.0
            )

    def test_ledger_covers_every_kind(self):
        model = CorruptionModel(4, 10, seed=0)
        for bucket in (
            model.injected,
            model.detected,
            model.silent,
            model.repaired,
        ):
            assert tuple(bucket) == ALL_CORRUPTION_KINDS
        assert "parity-pollution" not in CORRUPTION_KINDS


class TestZeroRateDeterminism:
    def test_zero_rates_draw_nothing(self):
        model = CorruptionModel(13, 26, seed=7)
        for i in range(200):
            assert model.note_write(i % 13, i % 26, 1, float(i)) is None
        assert model.remaining == 0
        assert model.cells_corrupted == 0
        # The lazy per-disk streams were never even created.
        assert model._rngs == {}

    def test_zero_rate_reads_see_nothing(self):
        model = CorruptionModel(13, 26, seed=7)
        assert model.corrupt_cells(0, 0, 26, 1e9) == ()


class TestLostWrite:
    def test_certain_loss_marks_every_covered_cell(self):
        model = CorruptionModel(4, 100, seed=7, lost_rate=1.0)
        assert model.note_write(0, 10, 3, 0.0) == "lost-write"
        hits = model.corrupt_cells(0, 10, 3, 0.0)
        assert sorted(off for off, _ in hits) == [10, 11, 12]
        assert all(kind == "lost-write" for _, kind in hits)
        assert model.injected["lost-write"] == 1
        assert model.cells_corrupted == 3

    def test_clean_write_repairs_covered_cells(self):
        model = CorruptionModel(4, 100, seed=7)
        model.begin_burst(0, 1.0, 0.0)
        model.note_write(0, 10, 2, 0.0)
        model.end_burst(0)
        assert model.remaining == 2
        assert model.note_write(0, 10, 2, 1.0) is None
        assert model.remaining == 0
        assert model.repaired["lost-write"] == 2
        assert model.corrupt_cells(0, 10, 2, 1.0) == ()

    def test_seeded_draws_replay(self):
        def draws(seed):
            model = CorruptionModel(
                4, 100, seed=seed, lost_rate=0.3, misdirected_rate=0.2
            )
            return [
                model.note_write(i % 4, i % 100, 1, float(i))
                for i in range(100)
            ]

        assert draws(11) == draws(11)
        assert draws(11) != draws(12)


class TestMisdirectedWrite:
    def test_marks_intended_and_victim_runs(self):
        model = CorruptionModel(4, 100, seed=7, misdirected_rate=1.0)
        assert model.note_write(1, 20, 2, 0.0) == "misdirected-write"
        hits = model.corrupt_cells(1, 0, 100, 0.0)
        offsets = sorted(off for off, _ in hits)
        # Intended cells stay stale AND a victim run is clobbered.
        assert {20, 21} <= set(offsets)
        assert len(offsets) == 4
        assert all(kind == "misdirected-write" for _, kind in hits)

    @given(
        rows=st.integers(min_value=2, max_value=10_000),
        offset=st.integers(min_value=0, max_value=9_999),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    @settings(max_examples=300, deadline=None)
    def test_victim_never_escapes_lba_range(self, rows, offset, seed):
        """The address-perturbation arithmetic: the victim offset is
        always a valid LBA on the disk and never the intended offset
        itself (which would be a correct write, not a misdirection)."""
        offset = offset % rows
        model = CorruptionModel(4, rows, seed=0)
        victim = model.misdirect_target(offset, random.Random(seed))
        assert 0 <= victim < rows
        assert victim != offset

    def test_single_row_disk_degenerates_safely(self):
        model = CorruptionModel(4, 1, seed=0)
        assert model.misdirect_target(0, random.Random(3)) == 0


class TestBitRot:
    def test_onsets_absorbed_by_clock(self):
        model = CorruptionModel(
            4, 50, seed=3, bitrot_cells=2.0, bitrot_window_ms=1000.0
        )
        total = len(model._bitrot_pending)
        assert total > 0
        model.corrupt_cells(0, 0, 50, -1.0)
        assert model.injected["bit-rot"] == 0
        model.corrupt_cells(0, 0, 50, 1000.0)
        assert model.injected["bit-rot"] == total

    def test_construction_draws_are_deterministic(self):
        def cells(seed):
            model = CorruptionModel(4, 50, seed=seed, bitrot_cells=2.0)
            return sorted(model._bitrot_pending)

        assert cells(5) == cells(5)

    def test_adding_disks_does_not_reshuffle_existing_streams(self):
        small = CorruptionModel(4, 50, seed=5, bitrot_cells=2.0)
        large = CorruptionModel(8, 50, seed=5, bitrot_cells=2.0)
        small_by_disk = sorted(
            e for e in small._bitrot_pending if e[1] < 4
        )
        large_by_disk = sorted(
            e for e in large._bitrot_pending if e[1] < 4
        )
        assert small_by_disk == large_by_disk


class TestBursts:
    def test_burst_overrides_then_restores_base_rates(self):
        model = CorruptionModel(4, 100, seed=7)
        assert not model.burst_active(2)
        model.begin_burst(2, 1.0, 0.0)
        assert model.burst_active(2)
        assert model.note_write(2, 5, 1, 0.0) == "lost-write"
        # Other disks stay at the base (zero) rates.
        assert model.note_write(1, 5, 1, 0.0) is None
        model.end_burst(2)
        assert not model.burst_active(2)
        assert model.note_write(2, 50, 1, 1.0) is None

    def test_burst_validates_inputs(self):
        model = CorruptionModel(4, 100, seed=7)
        with pytest.raises(ConfigurationError):
            model.begin_burst(9, 0.1, 0.0)
        with pytest.raises(ConfigurationError):
            model.begin_burst(0, 0.8, 0.8)
        with pytest.raises(ConfigurationError):
            model.begin_burst(0, -0.1, 0.2)


class TestLedger:
    def test_report_shape_and_totals(self):
        model = CorruptionModel(4, 100, seed=7)
        model.pollute(0, 3)
        model.note_detected("parity-pollution")
        model.note_silent("lost-write")
        report = model.report()
        assert report["injected"]["parity-pollution"] == 1
        assert report["detected_total"] == 1
        assert report["silent_total"] == 1
        assert report["cells_corrupted"] == 1
        assert report["remaining"] == 1
        for bucket in ("injected", "detected", "silent", "repaired"):
            assert tuple(report[bucket]) == ALL_CORRUPTION_KINDS

    def test_double_mark_counts_one_cell(self):
        model = CorruptionModel(4, 100, seed=7)
        model.pollute(0, 3)
        model.pollute(0, 3)
        assert model.injected["parity-pollution"] == 2
        assert model.cells_corrupted == 1
        assert model.remaining == 1
