"""Property test: resync closes the write hole at every crash point.

For any client write planned by :func:`repro.array.raidops.plan_access`
— any of the five registered layouts at the paper's 13-disk
configuration, any array mode, any starting state — tearing the plan at
*every* phase boundary (and after an arbitrary subset of the crash
phase's operations) and then replaying resync over the touched stripes
must leave every recomputable stripe parity-consistent.  Stripes whose
check cell is unreadable (``parity_lost``) are repaired the same way —
parity is recomputed from data, which closes the hole by construction.
``data_lost`` stripes are exactly the write-hole-while-degraded cases
the simulator declares terminal; the property there is that they only
arise when the failed disk really holds an unrebuilt data member of the
stripe, never silently.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.array.raidops import ArrayMode
from repro.array.resync import classify_stripe
from repro.experiments.config import layout_for
from repro.faults.oracle import StripeParityModel

LAYOUTS = ["datum", "parity-declustering", "raid5", "pddl", "prime"]


def _snapshot(model):
    return dict(model.stored), dict(model.parity), model._next_gen


def _restore(model, snap):
    stored, parity, gen = snap
    model.stored = dict(stored)
    model.parity = dict(parity)
    model._next_gen = gen


def _lost_data_units(layout, stripe, failed_disk, rebuilt):
    """Data units of ``stripe`` that are unreadable: on the failed disk
    and not yet swept into spare space / onto a replacement."""
    if failed_disk is None:
        return []
    return [
        unit
        for unit in layout.data_units_of_stripe(stripe)
        if (addr := layout.data_unit_address(unit)).disk == failed_disk
        and not (rebuilt is not None and rebuilt(addr.offset))
    ]


@pytest.mark.parametrize("layout_name", LAYOUTS)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_resync_restores_parity_after_any_crash(layout_name, data):
    layout = layout_for(layout_name, disks=13)
    model = StripeParityModel(layout)
    span = 2 * layout.data_units_per_period

    # Arbitrary committed history: the pre-crash array state is any
    # consistent state, not just all-zeros.
    for _ in range(data.draw(st.integers(0, 3), label="warmup_writes")):
        count = data.draw(st.integers(1, 6), label="warmup_count")
        first = data.draw(st.integers(0, span - count), label="warmup_first")
        model.plan_write(first, count).apply_all()

    modes = [
        ArrayMode.FAULT_FREE,
        ArrayMode.DEGRADED,
        ArrayMode.RECONSTRUCTION,
    ]
    if layout.has_sparing:
        # Layouts without spare space cannot plan post-reconstruction
        # accesses at all (raidops raises MappingError).
        modes.append(ArrayMode.POST_RECONSTRUCTION)
    mode = data.draw(st.sampled_from(modes), label="mode")
    failed_disk = None
    rebuilt = None
    if mode is not ArrayMode.FAULT_FREE:
        failed_disk = data.draw(st.integers(0, layout.n - 1), label="failed")
    if mode is ArrayMode.RECONSTRUCTION:
        frontier = data.draw(st.integers(0, 64), label="frontier")
        rebuilt = lambda offset: offset < frontier  # noqa: E731

    count = data.draw(st.integers(1, 8), label="count")
    first = data.draw(st.integers(0, span - count), label="first")

    # The resync sweep sees the failed disk only while it actually is
    # failed (matches Resynchronizer.start): post-reconstruction data
    # lives in its relocated copies, so every stripe is recomputable.
    sweep_failed = (
        failed_disk
        if mode in (ArrayMode.DEGRADED, ArrayMode.RECONSTRUCTION)
        else None
    )

    base = _snapshot(model)
    base_stored = base[0]
    phase_count = len(
        model.plan_write(first, count, mode, failed_disk, rebuilt).plan.phases
    )
    _restore(model, base)

    for boundary in range(phase_count + 1):
        # planned_parity depends on the stored state, so the plan must
        # be rebuilt from the restored snapshot for every crash point.
        _restore(model, base)
        write = model.plan_write(first, count, mode, failed_disk, rebuilt)
        write.apply_phases(boundary)

        if boundary == phase_count:
            # A completed write over a consistent state needs no resync.
            for stripe in write.stripes:
                verdict = classify_stripe(
                    layout, stripe, sweep_failed, rebuilt=rebuilt
                )
                if verdict == "recompute":
                    assert model.is_consistent(stripe)
                elif verdict == "parity_lost":
                    # The check cell is unreadable, so there is no
                    # parity equation to satisfy — but every written
                    # unit landed directly on a readable data cell.
                    for unit, gen in write.new_gens.items():
                        if unit in layout.data_units_of_stripe(stripe):
                            assert model.stored.get(unit, 0) == gen
                else:
                    # Degraded write: the unreadable unit's value lives
                    # only in parity — a degraded read must regenerate
                    # exactly what the client last wrote (or the
                    # pre-crash value if this write did not touch it).
                    lost = _lost_data_units(
                        layout, stripe, sweep_failed, rebuilt
                    )
                    (unit,) = lost  # stripe members sit on distinct disks
                    expected = write.new_gens.get(
                        unit, base_stored.get(unit, 0)
                    )
                    assert model.reconstruct(stripe, unit) == expected
            continue

        # The crash also lands mid-phase: any subset of the crash
        # phase's operations may have reached the platters.
        phase = write.plan.phases[boundary]
        applied = data.draw(
            st.lists(
                st.integers(0, len(phase) - 1),
                unique=True,
                max_size=len(phase),
            ),
            label=f"partial_ops_b{boundary}",
        ) if phase else []
        write.apply_ops([phase[i] for i in sorted(applied)])

        for stripe in write.stripes:
            verdict = classify_stripe(
                layout, stripe, sweep_failed, rebuilt=rebuilt
            )
            if verdict in ("recompute", "parity_lost"):
                # parity_lost differs only in *where* the recomputed
                # check value lands (the rebuild target); either way
                # resync recomputes parity from readable data.
                model.resync(stripe)
                assert model.is_consistent(stripe)
            else:
                assert verdict == "data_lost"
                # Write-hole data loss requires an unreadable data
                # member in the stripe — it can never arise fault-free
                # or behind the rebuild frontier.
                assert sweep_failed is not None
                assert _lost_data_units(
                    layout, stripe, sweep_failed, rebuilt
                )
