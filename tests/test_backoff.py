"""Regression pins for the shared capped-exponential backoff helper.

Both historical call sites had the formula inlined; the sequences below
are what those call sites produced before the dedup into
``repro.backoff``.  The controller's delays feed the simulated event
engine (so they are part of the byte-determinism contract), and the
worker pool's delays gate wall-clock retry pacing — neither may drift.
"""

from repro.backoff import capped_exponential


class TestCappedExponential:
    def test_controller_retry_policy_default_sequence(self):
        # RetryPolicy defaults: base 1.0 ms, cap 50.0 ms.
        delays = [capped_exponential(a, 1.0, 50.0) for a in range(1, 9)]
        assert delays == [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 50.0, 50.0]

    def test_worker_pool_default_sequence(self):
        # run_hardened defaults: base 0.5 s, cap 30.0 s.
        delays = [capped_exponential(a, 0.5, 30.0) for a in range(1, 9)]
        assert delays == [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 30.0, 30.0]

    def test_first_attempt_waits_base(self):
        assert capped_exponential(1, 3.25, 100.0) == 3.25

    def test_cap_is_exact_not_approached(self):
        # Once the doubled value crosses the cap, the cap itself is
        # returned — not the last pre-cap value.
        assert capped_exponential(7, 1.0, 50.0) == 50.0

    def test_zero_base_stays_zero(self):
        assert capped_exponential(5, 0.0, 10.0) == 0.0

    def test_matches_inline_formula_bit_for_bit(self):
        # The helper must reproduce the historical inline expression
        # exactly (same operation order → same float results).
        for attempt in range(1, 20):
            for base, cap in [(1.0, 50.0), (0.5, 30.0), (0.1, 7.3)]:
                inline = min(base * (2 ** (attempt - 1)), cap)
                assert capped_exponential(attempt, base, cap) == inline
