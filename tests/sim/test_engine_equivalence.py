"""Heap vs calendar-queue engine equivalence.

The two schedulers implement one contract: identical events in identical
order, identical clocks, identical counters.  The property-based test
interprets random scheduling programs (nested scheduling, ties, stops,
horizons, event budgets) against both implementations and demands the
observable state match exactly; the spec-level tests pin that whole
experiment records — instrumentation included — are byte-identical
under either ``REPRO_ENGINE`` setting.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.runner import canonical_json, execute_spec
from repro.runner.spec import ExperimentSpec, LifecycleSpec
from repro.sim.engine import (
    DEFAULT_ENGINE_KIND,
    ENGINE_ENV,
    ENGINE_KINDS,
    CalendarEngine,
    HeapEngine,
    engine_kind,
    make_engine,
)
from repro.sim.instrument import engine_snapshot

# Delays drawn from a small grid on purpose: collisions (equal fire
# times) are the hard case for the calendar queue's tie-break, and a
# continuous float strategy almost never produces them.
_DELAYS = st.one_of(
    st.sampled_from([0.0, 0.25, 0.5, 1.0, 1.5, 4.0, 7.25, 64.0, 1000.0]),
    st.floats(min_value=0.0, max_value=500.0,
              allow_nan=False, allow_infinity=False),
)

_SPAWNS = st.lists(_DELAYS, max_size=2)

_SEGMENT = st.fixed_dictionaries(
    {
        # (delay, child-delays, stop?) — stop callbacks exercise the
        # halt-before-same-timestamp contract.
        "schedule": st.lists(
            st.tuples(_DELAYS, _SPAWNS, st.booleans()), max_size=8
        ),
        "run": st.one_of(
            st.just(("drain", None, None)),
            st.tuples(st.just("until"), _DELAYS, st.none()),
            st.tuples(
                st.just("max"), st.none(), st.integers(0, 12)
            ),
            st.tuples(
                st.just("general"), _DELAYS, st.integers(0, 12)
            ),
        ),
    }
)

_PROGRAM = st.lists(_SEGMENT, min_size=1, max_size=3)


def _interpret(engine, program):
    """Run ``program`` on ``engine``; return every observable output."""
    fired = []

    def make_callback(tag, spawns, stop):
        def callback():
            fired.append((engine.now, tag))
            for j, delay in enumerate(spawns):
                engine.schedule(delay, make_callback((tag, j), [], False))
            if stop:
                engine.stop()

        return callback

    returned = []
    for index, segment in enumerate(program):
        for k, (delay, spawns, stop) in enumerate(segment["schedule"]):
            engine.schedule(delay, make_callback((index, k), spawns, stop))
        mode, until, max_events = segment["run"]
        if mode == "drain":
            returned.append(engine.run())
        elif mode == "until":
            # Horizons are absolute times; offset from the current
            # clock so later segments still have events in range.
            returned.append(engine.run(until=engine.now + until))
        elif mode == "max":
            returned.append(engine.run(max_events=max_events))
        else:
            returned.append(
                engine.run(
                    until=engine.now + until, max_events=max_events
                )
            )
    return {
        "fired": fired,
        "returned": returned,
        "snapshot": engine_snapshot(engine),
    }


class TestProgramEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(program=_PROGRAM)
    def test_calendar_matches_heap_exactly(self, program):
        heap = _interpret(HeapEngine(), program)
        calendar = _interpret(CalendarEngine(), program)
        assert calendar == heap

    @settings(max_examples=50, deadline=None)
    @given(
        program=_PROGRAM,
        width=st.sampled_from([1e-6, 0.125, 4.0, 1024.0]),
        nbuckets=st.sampled_from([1, 16, 64]),
    )
    def test_equivalence_survives_degenerate_tuning(
        self, program, width, nbuckets
    ):
        # Pathological widths force the resize / scan-debt / sparse
        # overflow paths; none of them may reorder a single event.
        heap = _interpret(HeapEngine(), program)
        calendar = _interpret(
            CalendarEngine(width=width, nbuckets=nbuckets), program
        )
        assert calendar == heap

    @settings(max_examples=50, deadline=None)
    @given(program=_PROGRAM)
    def test_clear_pending_drops_the_same_events(self, program):
        engines = (HeapEngine(), CalendarEngine())
        outputs = []
        for engine in engines:
            _interpret(engine, program)
            dropped = engine.clear_pending()
            outputs.append((dropped, engine.pending(), engine.run()))
        assert outputs[0] == outputs[1]


class TestSelectionKnob:
    def test_registry_covers_both_engines(self):
        assert ENGINE_KINDS == {"heap": HeapEngine, "calendar": CalendarEngine}
        assert DEFAULT_ENGINE_KIND in ENGINE_KINDS

    def test_env_knob_selects_engine(self, monkeypatch):
        for kind, engine_cls in ENGINE_KINDS.items():
            monkeypatch.setenv(ENGINE_ENV, kind)
            assert engine_kind() == kind
            assert type(make_engine()) is engine_cls

    def test_explicit_kind_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "heap")
        assert type(make_engine("calendar")) is CalendarEngine

    def test_unset_env_means_default(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert engine_kind() == DEFAULT_ENGINE_KIND

    def test_unknown_kind_rejected(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "fibonacci")
        with pytest.raises(ConfigurationError, match="fibonacci"):
            engine_kind()
        monkeypatch.delenv(ENGINE_ENV)
        with pytest.raises(ConfigurationError, match="splay"):
            make_engine("splay")


def _record_under(monkeypatch, kind, spec):
    monkeypatch.setenv(ENGINE_ENV, kind)
    return execute_spec(spec)


class TestInstrumentationIdentity:
    """Whole records — instrumentation blocks included — must not
    depend on the engine implementation."""

    @pytest.mark.parametrize(
        "spec",
        [
            ExperimentSpec(
                layout="pddl", size_kb=96, clients=8, max_samples=40
            ),
            ExperimentSpec(
                layout="raid5",
                size_kb=8,
                clients=25,
                max_samples=40,
                mode="f1",
            ),
            LifecycleSpec(
                layout="pddl",
                size_kb=24,
                clients=4,
                fault_time_ms=500.0,
                degraded_dwell_ms=300.0,
                rebuild_rows=26,
                post_samples=20,
                max_samples=60,
            ),
        ],
        ids=["response-ff", "response-f1", "lifecycle"],
    )
    def test_records_byte_identical_across_engines(self, monkeypatch, spec):
        heap = _record_under(monkeypatch, "heap", spec)
        calendar = _record_under(monkeypatch, "calendar", spec)
        assert canonical_json(heap) == canonical_json(calendar)
        # The instrumentation block is what golden traces do NOT cover
        # per engine — make its identity explicit, not incidental.
        assert heap["instrumentation"] == calendar["instrumentation"]
        assert heap["instrumentation"]["engine"]["events_processed"] > 0

    def test_engine_snapshot_fields_match(self):
        heap, calendar = HeapEngine(), CalendarEngine()
        for engine in (heap, calendar):
            engine.schedule(2.0, lambda: None)
            engine.schedule(2.0, lambda: None)
            engine.schedule(9.0, lambda: None)
            engine.run(until=5.0)
        assert engine_snapshot(heap) == engine_snapshot(calendar)
