"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.random import RandomStreams


class TestScheduling:
    def test_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(5.0, lambda: fired.append("b"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(9.0, lambda: fired.append("c"))
        engine.run()
        assert fired == ["a", "b", "c"]
        assert engine.now == 9.0

    def test_fifo_tie_break(self):
        engine = SimulationEngine()
        fired = []
        for i in range(5):
            engine.schedule(1.0, lambda i=i: fired.append(i))
        engine.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_nested_scheduling(self):
        engine = SimulationEngine()
        fired = []

        def first():
            fired.append(engine.now)
            engine.schedule(2.0, lambda: fired.append(engine.now))

        engine.schedule(1.0, first)
        engine.run()
        assert fired == [1.0, 3.0]

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_schedule_into_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule(5.0, lambda: engine.schedule_at(1.0, lambda: None))
        with pytest.raises(SimulationError):
            engine.run()


class TestRunControl:
    def test_stop(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: (fired.append(1), engine.stop()))
        engine.schedule(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1]
        assert engine.pending() == 1

    def test_until(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        engine.run()
        assert fired == [1, 10]

    def test_max_events(self):
        engine = SimulationEngine()
        fired = []
        for i in range(10):
            engine.schedule(float(i + 1), lambda i=i: fired.append(i))
        engine.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_events_processed_counter(self):
        engine = SimulationEngine()
        for i in range(4):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.events_processed == 4

    def test_run_returns_processed_count(self):
        engine = SimulationEngine()
        for i in range(4):
            engine.schedule(float(i), lambda: None)
        assert engine.run(max_events=3) == 3
        assert engine.run() == 1

    def test_stop_in_callback_halts_before_same_timestamp_event(self):
        # Regression: a stop() issued from a callback must be honoured
        # before the *next* event fires, even one scheduled at the very
        # same timestamp, and the un-fired events must stay pending.
        engine = SimulationEngine()
        fired = []
        engine.schedule(2.0, lambda: (fired.append("a"), engine.stop()))
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.schedule(2.0, lambda: fired.append("c"))
        processed = engine.run()
        assert fired == ["a"]
        assert processed == 1
        assert engine.pending() == 2
        assert engine.now == 2.0
        # The survivors are intact: a fresh run() fires them in order.
        assert engine.run() == 2
        assert fired == ["a", "b", "c"]
        assert engine.pending() == 0

    def test_stop_in_callback_with_max_events(self):
        # stop() must win over a larger max_events budget.
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(1.0, lambda: (fired.append(2), engine.stop()))
        engine.schedule(1.0, lambda: fired.append(3))
        assert engine.run(max_events=10) == 2
        assert fired == [1, 2]
        assert engine.pending() == 1

    def test_until_never_rewinds_clock(self):
        # Regression: run(until=...) with a horizon in the past must not
        # move time backwards.
        engine = SimulationEngine()
        engine.schedule(10.0, lambda: None)
        engine.run()
        assert engine.now == 10.0
        engine.schedule(5.0, lambda: None)  # at t = 15
        engine.run(until=12.0)
        assert engine.now == 12.0
        engine.run(until=3.0)  # past horizon: no-op, not a time machine
        assert engine.now == 12.0
        assert engine.pending() == 1

    def test_stop_before_run_is_discarded(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.stop()
        assert engine.run() == 1  # each run() starts fresh
        assert fired == [1]

    def test_heap_high_water(self):
        engine = SimulationEngine()
        assert engine.heap_high_water == 0
        for i in range(5):
            engine.schedule(float(i + 1), lambda: None)
        engine.run()
        assert engine.heap_high_water == 5
        assert engine.pending() == 0


class TestRunUntil:
    """The batched horizon path must mirror run(until=...) exactly."""

    def test_processes_only_up_to_horizon(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(10))
        assert engine.run_until(5.0) == 1
        assert fired == [1]
        assert engine.now == 5.0  # later event pending: clock advances
        assert engine.pending() == 1

    def test_clock_stays_at_last_event_when_heap_drains(self):
        engine = SimulationEngine()
        engine.schedule(3.0, lambda: None)
        assert engine.run_until(100.0) == 1
        assert engine.now == 3.0  # heap drained: no jump to the horizon

    def test_never_rewinds_clock(self):
        engine = SimulationEngine()
        engine.schedule(10.0, lambda: None)
        engine.run()
        engine.schedule(5.0, lambda: None)  # at t = 15
        assert engine.run_until(3.0) == 0  # past horizon: clock no-op
        assert engine.now == 10.0
        assert engine.pending() == 1

    def test_honours_stop(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(1.0, lambda: (fired.append(1), engine.stop()))
        engine.schedule(1.0, lambda: fired.append(2))
        assert engine.run_until(9.0) == 1
        assert fired == [1]
        assert engine.pending() == 1

    def test_matches_run_with_until(self):
        def build():
            engine = SimulationEngine()
            fired = []

            def tick():
                fired.append(engine.now)
                if engine.now < 8.0:
                    engine.schedule(2.0, tick)

            engine.schedule(1.0, tick)
            return engine, fired

        a, fired_a = build()
        b, fired_b = build()
        assert a.run(until=6.0) == b.run_until(6.0)
        assert fired_a == fired_b
        assert a.now == b.now
        assert a.pending() == b.pending()


class TestRandomStreams:
    def test_reproducible(self):
        a = RandomStreams(7).get("x").random()
        b = RandomStreams(7).get("x").random()
        assert a == b

    def test_streams_independent(self):
        streams = RandomStreams(7)
        x = streams.get("x")
        first = streams.get("y").random()
        x.random()  # consuming x must not perturb y
        assert RandomStreams(7).get("y").random() == first

    def test_same_stream_returned(self):
        streams = RandomStreams(7)
        assert streams.get("x") is streams.get("x")
