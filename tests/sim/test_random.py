"""Shared seeded samplers: Poisson counts and exponential delays.

``poisson_draw`` moved here from ``repro.faults.media``; the pinned
sequences below freeze its small-lambda behaviour byte-for-byte, since
every committed baseline with seeded latent sector errors depends on the
exact draws (the media tests pin the call-site behaviour; this pins the
sampler itself, including the named-stream seeding convention).
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.random import (
    _POISSON_PRODUCT_LIMIT,
    exponential_block_ms,
    exponential_ms,
    poisson_block,
    poisson_draw,
)

#: Frozen draws from the media layer's named streams.  These must never
#: change: MediaErrorMap.from_rate seeds ``{seed}/lse-{disk}`` streams
#: and any drift re-seeds every committed LSE campaign.
PINNED_LSE_STREAM = [2, 0, 0, 0, 6, 1, 2, 0, 3, 1]  # 7/lse-3, lam=2.5
PINNED_SMALL_LAMBDA = [0, 0, 0, 0, 1, 1, 1, 3, 0, 0, 2, 0]  # pin, lam=0.8


class TestPoissonDraw:
    def test_pinned_media_stream(self):
        rng = random.Random("7/lse-3")
        assert [poisson_draw(2.5, rng) for _ in range(10)] == (
            PINNED_LSE_STREAM
        )

    def test_pinned_small_lambda(self):
        rng = random.Random("pin")
        assert [poisson_draw(0.8, rng) for _ in range(12)] == (
            PINNED_SMALL_LAMBDA
        )

    def test_zero_rate_zero_count(self):
        assert poisson_draw(0.0, random.Random(1)) == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            poisson_draw(-1.0, random.Random(1))

    def test_large_lambda_no_underflow(self):
        """The product method underflows past lam ~ 745; the log-space
        regime must keep producing sane counts at arbitrary rates."""
        for lam in (1e3, 1e4, 1e6):
            draw = poisson_draw(lam, random.Random("big"))
            assert abs(draw - lam) < 6 * math.sqrt(lam)

    def test_regimes_agree_at_the_boundary(self):
        """Just below and above the product-method limit both regimes
        estimate the same distribution (means within a few sigma)."""
        lam = _POISSON_PRODUCT_LIMIT
        below = [
            poisson_draw(lam - 1, random.Random(s)) for s in range(200)
        ]
        above = [
            poisson_draw(lam + 1, random.Random(s)) for s in range(200)
        ]
        assert abs(sum(below) / 200 - (lam - 1)) < 3 * math.sqrt(lam / 200)
        assert abs(sum(above) / 200 - (lam + 1)) < 3 * math.sqrt(lam / 200)

    def test_mean_tracks_lambda(self):
        rng = random.Random("mean")
        draws = [poisson_draw(4.0, rng) for _ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(4.0, rel=0.05)


class TestExponentialMs:
    def test_deterministic_from_seed(self):
        a = [exponential_ms(10.0, random.Random("e")) for _ in range(50)]
        b = [exponential_ms(10.0, random.Random("e")) for _ in range(50)]
        assert a == b

    def test_mean_tracks_parameter(self):
        rng = random.Random("expmean")
        draws = [exponential_ms(25.0, rng) for _ in range(20000)]
        assert sum(draws) / len(draws) == pytest.approx(25.0, rel=0.05)

    def test_always_nonnegative_and_finite(self):
        rng = random.Random("edge")
        for _ in range(1000):
            draw = exponential_ms(0.001, rng)
            assert 0.0 <= draw < math.inf

    def test_nonpositive_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            exponential_ms(0.0, random.Random(1))
        with pytest.raises(ConfigurationError):
            exponential_ms(-5.0, random.Random(1))


#: Seed strings shaped like every named stream the samplers actually
#: feed: media LSE streams, fault interarrival streams, and traffic
#: trial streams (see MediaErrorMap.from_rate, FaultSchedule, and the
#: open-loop runner respectively).
_STREAM_NAMES = st.one_of(
    st.builds("{}/lse-{}".format, st.integers(0, 99), st.integers(0, 40)),
    st.builds("{}/disk-{}".format, st.integers(0, 99), st.integers(0, 40)),
    st.builds("{}/openloop-{}".format, st.integers(0, 99), st.integers(0, 40)),
)


class TestBlockDraws:
    """A block of k draws is byte-identical to k sequential draws.

    This is the contract that lets the batched executor (and any future
    vectorized sampler) pre-draw RNG blocks without perturbing a single
    committed baseline: the block functions must consume *exactly* the
    same underlying uniforms in the same order as the scalar loop.
    """

    @settings(max_examples=150, deadline=None)
    @given(
        name=_STREAM_NAMES,
        lam=st.one_of(
            st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
            # Straddle the product/log-space regime boundary too.
            st.floats(
                min_value=_POISSON_PRODUCT_LIMIT - 2.0,
                max_value=_POISSON_PRODUCT_LIMIT + 2.0,
            ),
        ),
        count=st.integers(min_value=0, max_value=64),
    )
    def test_poisson_block_matches_sequential(self, name, lam, count):
        rng_seq = random.Random(name)
        sequential = [poisson_draw(lam, rng_seq) for _ in range(count)]
        rng_block = random.Random(name)
        block = poisson_block(lam, rng_block, count)
        assert block == sequential
        # Identical RNG state afterwards: interleaving block and scalar
        # draws anywhere in a stream cannot fork it.
        assert rng_block.getstate() == rng_seq.getstate()

    @settings(max_examples=150, deadline=None)
    @given(
        name=_STREAM_NAMES,
        mean_ms=st.floats(
            min_value=1e-3, max_value=1e7, allow_nan=False
        ),
        count=st.integers(min_value=0, max_value=64),
    )
    def test_exponential_block_matches_sequential(
        self, name, mean_ms, count
    ):
        rng_seq = random.Random(name)
        sequential = [
            exponential_ms(mean_ms, rng_seq) for _ in range(count)
        ]
        rng_block = random.Random(name)
        block = exponential_block_ms(mean_ms, rng_block, count)
        assert block == sequential
        assert rng_block.getstate() == rng_seq.getstate()

    @settings(max_examples=50, deadline=None)
    @given(
        name=_STREAM_NAMES,
        lam=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        split=st.integers(min_value=0, max_value=32),
        count=st.integers(min_value=0, max_value=32),
    )
    def test_poisson_blocks_compose(self, name, lam, split, count):
        # Two blocks back-to-back == one big block: block boundaries
        # are invisible in the stream.
        rng_one = random.Random(name)
        one = poisson_block(lam, rng_one, split + count)
        rng_two = random.Random(name)
        two = poisson_block(lam, rng_two, split) + poisson_block(
            lam, rng_two, count
        )
        assert one == two
        assert rng_one.getstate() == rng_two.getstate()

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            poisson_block(1.0, random.Random(1), -1)
        with pytest.raises(ConfigurationError):
            exponential_block_ms(1.0, random.Random(1), -1)

    def test_zero_count_draws_nothing(self):
        rng = random.Random("idle")
        before = rng.getstate()
        assert poisson_block(3.0, rng, 0) == []
        assert exponential_block_ms(3.0, rng, 0) == []
        assert rng.getstate() == before
