"""Unit tests for the bench-regression gate."""

import copy
import json
from pathlib import Path

import pytest

from repro.errors import RunnerError
from repro.runner.benchcompare import (
    KNOWN_BENCHES,
    check_invariants,
    compare_reports,
    diff_reports,
    load_report,
    run_compare,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def nemesis_report():
    return {
        "bench": "nemesis",
        "provenance": {
            "source_version": "abc1234",
            "spec_schema": 1,
            "spec_count": 2,
            "sweep_hash": "f" * 64,
        },
        "config": {"layout": "pddl", "disks": 13, "trials": 2, "seed": 0},
        "summary": {
            "trials": 2,
            "survived": 1,
            "data_loss": 1,
            "silent_corruption": 0,
            "corruption_events": 0,
            "failing_trials": [],
        },
        "trials": [
            {"trial": 0, "classification": "survived",
             "corruption_events": 0},
            {"trial": 1, "classification": "data_loss",
             "corruption_events": 0},
        ],
    }


def campaign_report():
    return {
        "bench": "campaign",
        "config": {"layout": "pddl"},
        "summary": {
            "trials": 1,
            "losses": 0,
            "loss_probability": 0.0,
            "ci_low": 0.0,
            "ci_high": 0.14,
        },
        "trials": [{"trial": 0}],
    }


class TestCheckInvariants:
    def test_healthy_reports_pass(self):
        assert check_invariants(nemesis_report()) == []
        assert check_invariants(campaign_report()) == []

    def test_silent_corruption_is_a_hard_fail(self):
        report = nemesis_report()
        report["summary"]["silent_corruption"] = 1
        report["summary"]["survived"] = 0
        report["summary"]["failing_trials"] = [1]
        problems = check_invariants(report)
        assert any("SILENT_CORRUPTION" in p for p in problems)
        assert any("[1]" in p for p in problems)

    def test_outcome_sum_mismatch(self):
        report = nemesis_report()
        report["summary"]["survived"] = 5
        assert any("sum" in p for p in check_invariants(report))

    def test_trial_count_mismatch(self):
        report = nemesis_report()
        report["trials"].pop()
        assert any("recorded" in p for p in check_invariants(report))

    def test_campaign_ci_must_bracket_estimate(self):
        report = campaign_report()
        report["summary"]["ci_low"] = 0.5
        assert any("bracket" in p for p in check_invariants(report))

    def test_unknown_bench_kind(self):
        assert check_invariants({"bench": "mystery"}) == [
            "unknown bench kind 'mystery'"
        ]

    def test_truncated_report_is_malformed_not_a_crash(self):
        problems = check_invariants({"bench": "nemesis"})
        assert problems and "malformed" in problems[0]


def hotpath_report():
    return {
        "bench": "hotpath",
        "quick": False,
        "repeat": 3,
        "python": "3.11.7",
        "specs": [
            {
                "label": "response/pddl/96KB/c8/n300",
                "wall_s": 0.05,
                "events": 5000,
                "events_per_s": 100000.0,
            },
            {
                "label": "lifecycle/pddl/24KB/c4",
                "wall_s": 0.025,
                "events": 1000,
                "events_per_s": 40000.0,
            },
        ],
        "campaign_batch": {
            "label": "campaign/pddl/13disks/n200",
            "trials": 200,
            "events": 30000,
            "wall_s": 1.0,
            "serial_wall_s": 1.5,
            "events_per_s": 30000.0,
            "batch_speedup": 1.5,
        },
        "total": {"wall_s": 0.075, "events": 6000, "events_per_s": 80000.0},
        "speedup": {
            "total": 3.1,
            "per_spec": {"response/pddl/96KB/c8/n300": 3.4},
        },
        "provenance": {
            "source_version": "abc1234",
            "sweep_hash": "deadbeef",
        },
    }


class TestHotpathInvariants:
    def test_healthy_report_passes(self):
        assert check_invariants(hotpath_report()) == []

    def test_speedup_and_campaign_blocks_are_optional(self):
        report = hotpath_report()
        del report["speedup"]
        del report["campaign_batch"]
        assert check_invariants(report) == []

    def test_rate_inconsistent_with_wall_clock(self):
        report = hotpath_report()
        report["specs"][0]["events_per_s"] = 12345.0  # not events/wall_s
        assert any("inconsistent" in p for p in check_invariants(report))

    def test_total_must_sum_per_spec_events(self):
        report = hotpath_report()
        report["total"]["events"] = 999
        assert any("sum" in p for p in check_invariants(report))

    def test_nonpositive_speedup_flagged(self):
        report = hotpath_report()
        report["speedup"]["per_spec"]["lifecycle/pddl/24KB/c4"] = 0.0
        assert any("speedup" in p for p in check_invariants(report))

    def test_empty_campaign_batch_flagged(self):
        report = hotpath_report()
        report["campaign_batch"]["trials"] = 0
        report["campaign_batch"]["events"] = 0
        problems = check_invariants(report)
        assert any("trials" in p for p in problems)
        assert any("events" in p for p in problems)

    def test_missing_provenance_flagged(self):
        report = hotpath_report()
        del report["provenance"]
        assert any("provenance" in p for p in check_invariants(report))

    def test_committed_baseline_passes(self):
        committed = json.loads(
            (Path(__file__).parents[2] / "BENCH_hotpath.json").read_text()
        )
        assert check_invariants(committed) == []


class TestDiffReports:
    def test_identical_modulo_version_stamp(self):
        a, b = nemesis_report(), nemesis_report()
        b["provenance"]["source_version"] = "def5678-dirty"
        assert diff_reports(a, b) == []

    def test_value_change_is_located(self):
        a, b = nemesis_report(), nemesis_report()
        b["trials"][1]["classification"] = "survived"
        diffs = diff_reports(a, b)
        assert diffs == [
            "trials[1].classification: 'data_loss' vs 'survived'"
        ]

    def test_length_change_reported_once(self):
        a, b = nemesis_report(), nemesis_report()
        b["trials"].append({"trial": 2})
        assert diff_reports(a, b) == ["trials: 2 vs 3 entries"]

    def test_limit_caps_output(self):
        a = {"bench": "x", "v": list(range(100))}
        b = {"bench": "x", "v": [n + 1 for n in range(100)]}
        assert len(diff_reports(a, b, limit=3)) == 3


class TestCompareReports:
    def test_no_shift_no_problems(self):
        assert compare_reports(nemesis_report(), nemesis_report()) == []

    def test_summary_level_shift_named_with_versions(self):
        base, cand = nemesis_report(), nemesis_report()
        cand["provenance"]["source_version"] = "def5678"
        cand["summary"]["survived"] = 2
        cand["summary"]["data_loss"] = 0
        shifts = compare_reports(base, cand)
        assert any(
            "summary.survived" in s and "abc1234" in s and "def5678" in s
            for s in shifts
        )

    def test_kind_mismatch_is_incomparable(self):
        shifts = compare_reports(nemesis_report(), campaign_report())
        assert shifts == [
            "bench kinds differ: 'nemesis' vs 'campaign'"
            " — nothing to compare"
        ]

    def test_config_mismatch_stops_comparison(self):
        base, cand = nemesis_report(), nemesis_report()
        cand["config"]["seed"] = 99
        shifts = compare_reports(base, cand)
        assert shifts == [
            "configs differ — these reports measured different sweeps"
        ]

    def test_hotpath_tolerates_slow_machines(self):
        base = {
            "bench": "hotpath",
            "config": None,
            "total": {"events": 1000, "events_per_s": 100000.0},
        }
        slow = copy.deepcopy(base)
        slow["total"]["events_per_s"] = 60000.0
        assert compare_reports(base, slow) == []
        crawl = copy.deepcopy(base)
        crawl["total"]["events_per_s"] = 40000.0
        assert any(
            "events_per_s" in s for s in compare_reports(base, crawl)
        )


def corruption_report():
    def ledger(silent=0):
        return {
            "injected": {"lost-write": 2, "misdirected-write": 1,
                         "bit-rot": 0, "parity-pollution": 0},
            "detected": {"lost-write": 2 - silent, "misdirected-write": 1,
                         "bit-rot": 0, "parity-pollution": 0},
            "silent": {"lost-write": silent, "misdirected-write": 0,
                       "bit-rot": 0, "parity-pollution": 0},
            "repaired": {"lost-write": 2 - silent, "misdirected-write": 1,
                         "bit-rot": 0, "parity-pollution": 0},
            "cells_corrupted": 3,
            "remaining": 0,
            "silent_total": silent,
            "detected_total": 3 - silent,
        }

    return {
        "bench": "corruption",
        "provenance": {
            "source_version": "abc1234",
            "spec_schema": 1,
            "spec_count": 2,
            "sweep_hash": "f" * 64,
        },
        "config": {"layouts": ["pddl"], "defenses": ["none", "checksum"],
                   "trials": 1, "seed": 0},
        "summary": {
            "trials": 2,
            "silent_by_defense": {"none": 2, "checksum": 0},
            "defended_silent_total": 0,
            "undefended_silent_total": 2,
        },
        "trials": [
            {"layout": "pddl", "defense": "none", "trial": 0,
             "classification": "silent_corruption",
             "offered": 100, "completed": 98, "shed": 2,
             "corruption": ledger(silent=2)},
            {"layout": "pddl", "defense": "checksum", "trial": 0,
             "classification": "detected_and_repaired",
             "offered": 100, "completed": 97, "shed": 3,
             "corruption": ledger(silent=0)},
        ],
    }


class TestCorruptionInvariants:
    def test_healthy_report_passes(self):
        assert check_invariants(corruption_report()) == []

    def test_defended_silent_corruption_is_a_hard_fail(self):
        report = corruption_report()
        report["trials"][1]["corruption"]["silent_total"] = 1
        report["trials"][1]["corruption"]["silent"]["lost-write"] = 1
        report["summary"]["silent_by_defense"]["checksum"] = 1
        report["summary"]["defended_silent_total"] = 1
        problems = check_invariants(report)
        assert any("defended tiers" in p for p in problems)
        assert any("'checksum'" in p for p in problems)
        assert any("pddl/checksum#0" in p for p in problems)

    def test_defended_silent_classification_flagged(self):
        report = corruption_report()
        report["trials"][1]["classification"] = "silent_corruption"
        problems = check_invariants(report)
        assert any("classified" in p for p in problems)

    def test_ledger_sum_mismatch(self):
        report = corruption_report()
        report["trials"][0]["corruption"]["silent_total"] = 5
        assert any(
            "per-kind silent ledger" in p
            for p in check_invariants(report)
        )

    def test_admission_accounting_must_balance(self):
        report = corruption_report()
        report["trials"][0]["completed"] = 10
        assert any("!= offered" in p for p in check_invariants(report))

    def test_trial_count_mismatch(self):
        report = corruption_report()
        report["trials"].pop()
        report["summary"]["silent_by_defense"]["checksum"] = 0
        assert any("recorded" in p for p in check_invariants(report))

    def test_undefended_silence_is_allowed(self):
        # The 'none' tier SHOULD show silent corruption — that is the
        # point of the bench; only defended tiers are gated.
        report = corruption_report()
        assert check_invariants(report) == []


class TestComparerRegistry:
    def test_every_known_bench_has_checker_and_comparer(self):
        from repro.runner.benchcompare import _CHECKERS, _COMPARERS

        for kind in KNOWN_BENCHES:
            assert kind in _CHECKERS, kind
            assert kind in _COMPARERS, kind

    def test_unknown_kind_is_a_named_problem_not_a_pass(self):
        base = {"bench": "mystery", "config": None}
        problems = compare_reports(base, copy.deepcopy(base))
        assert problems == [
            "no comparer registered for bench kind 'mystery'"
            " — cannot gate on this baseline"
        ]

    def test_corruption_reports_use_trial_sweep_comparer(self):
        base, cand = corruption_report(), corruption_report()
        cand["provenance"]["source_version"] = "def5678"
        cand["summary"]["defended_silent_total"] = 1
        cand["trials"][1]["corruption"]["silent_total"] = 1
        shifts = compare_reports(base, cand)
        assert any("summary.defended_silent_total" in s for s in shifts)
        assert any("trials[1]" in s for s in shifts)


class TestRunCompare:
    def test_missing_file_is_a_problem_line(self, tmp_path):
        problems = run_compare([str(tmp_path / "nope.json")])
        assert len(problems) == 1
        assert "cannot read" in problems[0]

    def test_non_json_is_a_problem_line(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{half a report")
        problems = run_compare([str(path)])
        assert len(problems) == 1
        assert "not JSON" in problems[0]

    def test_all_failing_files_reported_in_one_run(self, tmp_path):
        """One bad baseline must not mask the others: every failing
        file appears in a single pass, readable ones still checked."""
        missing = tmp_path / "BENCH_missing.json"
        broken = tmp_path / "BENCH_broken.json"
        broken.write_text("{half a report")
        good = tmp_path / "BENCH_nemesis.json"
        good.write_text(json.dumps(nemesis_report()))
        problems = run_compare([str(missing), str(broken), str(good)])
        assert len(problems) == 2
        assert any("cannot read" in p and "missing" in p for p in problems)
        assert any("not JSON" in p and "broken" in p for p in problems)

    def test_unreadable_candidate_is_a_problem_line(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(nemesis_report()))
        problems = run_compare(
            [str(base)], candidate_path=str(tmp_path / "nope.json")
        )
        assert len(problems) == 1
        assert "cannot read" in problems[0]

    def test_no_readable_baseline_for_candidate(self, tmp_path):
        cand = tmp_path / "cand.json"
        cand.write_text(json.dumps(nemesis_report()))
        problems = run_compare(
            [str(tmp_path / "nope.json")], candidate_path=str(cand)
        )
        assert any("cannot read" in p for p in problems)
        assert any("no readable baseline" in p for p in problems)

    def test_candidate_without_baseline_raises(self, tmp_path):
        path = tmp_path / "cand.json"
        path.write_text(json.dumps(nemesis_report()))
        with pytest.raises(RunnerError, match="needs a --baseline"):
            run_compare([], candidate_path=str(path))

    def test_exact_mode_flags_any_simulated_drift(self, tmp_path):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(json.dumps(nemesis_report()))
        drifted = nemesis_report()
        drifted["trials"][0]["corruption_events"] = 0
        drifted["summary"]["data_loss"] = 1
        drifted["trials"][1]["classification"] = "survived"
        drifted["summary"]["survived"] = 1
        cand.write_text(json.dumps(drifted))
        problems = run_compare(
            [str(base)], candidate_path=str(cand), exact=True
        )
        assert any("classification" in p for p in problems)


def failslow_report():
    tail = {
        "count": 100,
        "p50_ms": 10.0,
        "p99_ms": 50.0,
        "p999_ms": 80.0,
        "max_ms": 90.0,
    }
    return {
        "bench": "failslow",
        "provenance": {
            "source_version": "abc1234",
            "spec_schema": 1,
            "spec_count": 2,
            "sweep_hash": "f" * 64,
        },
        "config": {"layouts": ["pddl"], "seed": 0},
        "summary": {
            "trials": 2,
            "truncated_trials": 0,
            "slo_violated_trials": 1,
            "hedging": {
                "pddl": {
                    "none_p999_ms": 80.0,
                    "hedge_p999_ms": 40.0,
                    "launched": 10,
                    "won": 6,
                    "win_rate": 0.6,
                    "quarantines": 1,
                }
            },
            "adaptive": {},
        },
        "trials": [
            {
                "layout": "pddl",
                "defense": "none",
                "offered": 100,
                "completed": 100,
                "shed": 0,
                "tail": dict(tail),
            },
            {
                "layout": "pddl",
                "defense": "hedge",
                "offered": 100,
                "completed": 98,
                "shed": 2,
                "tail": dict(tail),
                "hedging": {"launched": 10, "won": 6, "lost": 4,
                            "aborts": 1},
            },
        ],
    }


class TestFailslowInvariants:
    def test_healthy_report_passes(self):
        assert check_invariants(failslow_report()) == []

    def test_missing_provenance_flagged(self):
        report = failslow_report()
        del report["provenance"]
        assert any(
            "provenance" in p for p in check_invariants(report)
        )

    def test_missing_provenance_names_the_file(self, tmp_path):
        report = failslow_report()
        del report["provenance"]
        path = tmp_path / "BENCH_failslow.json"
        path.write_text(json.dumps(report))
        problems = run_compare([str(path)])
        assert problems
        assert all(str(path) in p for p in problems)

    def test_hedge_wins_cannot_exceed_launches(self):
        report = failslow_report()
        report["trials"][1]["hedging"]["won"] = 20
        problems = check_invariants(report)
        assert any("exceed launches" in p for p in problems)
        assert any("wins" in p for p in problems)

    def test_hedging_defense_requires_counters(self):
        report = failslow_report()
        del report["trials"][1]["hedging"]
        assert any(
            "lacks counters" in p for p in check_invariants(report)
        )

    def test_counters_on_undefended_trial_flagged(self):
        report = failslow_report()
        report["trials"][0]["hedging"] = {
            "launched": 1, "won": 1, "lost": 0, "aborts": 0
        }
        assert any(
            "non-hedging" in p for p in check_invariants(report)
        )

    def test_summary_win_rate_consistency(self):
        report = failslow_report()
        report["summary"]["hedging"]["pddl"]["won"] = 99
        assert any(
            "summary.hedging" in p for p in check_invariants(report)
        )

    def test_accounting_mismatch_flagged(self):
        report = failslow_report()
        report["trials"][0]["completed"] = 90
        assert any("offered" in p for p in check_invariants(report))

    def test_summary_level_shift_detected(self):
        baseline = failslow_report()
        candidate = failslow_report()
        candidate["summary"]["slo_violated_trials"] = 2
        candidate["trials"][0]["tail"]["p99_ms"] = 60.0
        problems = compare_reports(baseline, candidate)
        assert any("slo_violated_trials" in p for p in problems)
        assert any("p99_ms" in p for p in problems)


class TestCommittedBaselines:
    """Every committed BENCH_*.json must pass its own invariant check."""

    @pytest.mark.parametrize("kind", KNOWN_BENCHES)
    def test_baseline_self_check(self, kind):
        path = REPO_ROOT / f"BENCH_{kind}.json"
        if not path.exists():
            pytest.skip(f"{path.name} not committed yet")
        report = load_report(str(path))
        assert check_invariants(report) == []
