"""BatchedTrialExecutor: amortized setup, byte-identical records.

The executor shares layout construction across a Monte-Carlo batch and
accumulates out-of-band counters; its one hard contract is that every
record it produces is byte-identical to a cold :func:`execute_spec`
call for the same spec — batching is a pure wall-clock optimization,
never a semantic one.
"""

import pytest

from repro.runner import canonical_json, execute_spec
from repro.runner.execute import BatchedTrialExecutor
from repro.runner.spec import (
    CampaignTrialSpec,
    CrashTrialSpec,
    ExperimentSpec,
    NemesisTrialSpec,
    OpenLoopSpec,
)


def campaign(trial, **overrides):
    config = dict(
        layout="pddl",
        disks=13,
        trial=trial,
        seed=5,
        mttf_hours=0.03,
        faults=2,
        degraded_dwell_ms=4000.0,
        rebuild_rows=26,
    )
    config.update(overrides)
    return CampaignTrialSpec(**config)


def mixed_batch():
    return [
        campaign(0),
        campaign(1, clients=2, size_kb=8),
        campaign(2, oracle=True),
        CrashTrialSpec(layout="pddl", crash_boundary=150),
        NemesisTrialSpec(layout="pddl", seed=11, trial=4, max_samples=60),
        OpenLoopSpec(layout="pddl", rate_per_s=300.0, arrivals=60),
        campaign(3),
    ]


class TestByteIdentity:
    def test_batched_records_match_serial_exactly(self):
        specs = mixed_batch()
        serial = [execute_spec(spec) for spec in specs]
        batched = BatchedTrialExecutor().run(specs)
        assert canonical_json(batched) == canonical_json(serial)

    def test_order_and_grouping_are_irrelevant(self):
        # A second executor seeing the same specs in a different order
        # (different layout-cache hit pattern) produces the same bytes.
        specs = mixed_batch()
        forward = BatchedTrialExecutor().run(specs)
        backward = BatchedTrialExecutor().run(list(reversed(specs)))
        by_hash = {r["spec_hash"]: r for r in backward}
        for record in forward:
            assert canonical_json(record) == canonical_json(
                by_hash[record["spec_hash"]]
            )


class TestAmortization:
    def test_layout_is_built_once_per_shape(self):
        executor = BatchedTrialExecutor()
        first = executor.shared_layout(campaign(0))
        again = executor.shared_layout(campaign(7))
        assert first is again  # cache hit: same (layout, disks, width)
        other = executor.shared_layout(
            CrashTrialSpec(layout="pddl", crash_boundary=150)
        )
        # Different shape (crash trials default to other dimensions) or
        # same — either way the cache keys on the shape, not the kind.
        key_kinds = {
            (spec.layout, spec.disks, spec.width)
            for spec in (campaign(0), campaign(7))
        }
        assert len(key_kinds) == 1
        assert other is executor.shared_layout(
            CrashTrialSpec(layout="pddl", crash_boundary=90)
        )

    def test_counters_accumulate(self):
        specs = [campaign(trial) for trial in range(3)]
        executor = BatchedTrialExecutor()
        executor.run(specs)
        assert executor.trials_executed == 3
        assert executor.events_processed > 0

    def test_non_batchable_kinds_fall_through(self):
        spec = ExperimentSpec(
            layout="pddl", size_kb=96, clients=8, max_samples=10
        )
        executor = BatchedTrialExecutor()
        record = executor.execute(spec)
        assert canonical_json(record) == canonical_json(execute_spec(spec))
        assert executor.trials_executed == 0  # only batched kinds count
        assert not executor._layouts


class TestWorkerParity:
    @pytest.mark.parametrize("workers", [2])
    def test_hardened_pool_matches_serial(self, workers):
        from repro.runner.workers import run_hardened

        specs = [campaign(trial) for trial in range(4)]
        serial = [execute_spec(spec) for spec in specs]
        pooled = run_hardened(specs, workers=workers)
        assert canonical_json(pooled) == canonical_json(serial)
