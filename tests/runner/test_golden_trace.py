"""Golden-trace regression tests.

The canonical 13-disk PDDL run must reproduce its pinned
physical-operation trace *exactly* — same disks, same LBAs, same float
timings — guarding future scheduler/engine/drive refactors.  JSON
round-trips doubles losslessly, so equality here is bit-equality.
"""

import json

from tests.runner.golden import GOLDEN_PATH, generate_trace


def _load_golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestGoldenTrace:
    def test_trace_matches_exactly(self):
        golden = _load_golden()
        trace = generate_trace()
        assert len(trace) == len(golden["trace"])
        for i, (ours, pinned) in enumerate(zip(trace, golden["trace"])):
            assert ours == pinned, (
                f"trace diverges at entry {i}:\n"
                f"  ours:   {ours}\n  pinned: {pinned}\n"
                "If the simulation semantics changed intentionally,"
                " regenerate with `python -m tests.runner.golden`"
                " and bump SPEC_SCHEMA_VERSION."
            )

    def test_trace_is_reproducible_within_process(self):
        assert generate_trace() == generate_trace()

    def test_golden_scenario_is_nontrivial(self):
        golden = _load_golden()
        trace = golden["trace"]
        assert len(trace) >= 50
        # Multi-disk, both queued and immediate service, real seeks.
        assert len({entry["disk"] for entry in trace}) >= 8
        assert any(entry["seek_ms"] > 0 for entry in trace)
        # Later operations start after queueing, not all at t = 0.
        assert any(entry["start_ms"] > 0 for entry in trace)
        assert len({entry["access_id"] for entry in trace}) > 3
