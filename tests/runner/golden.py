"""The canonical golden-trace scenario (and its regenerator).

A short, fixed-seed run of the paper's 13-disk PDDL array whose exact
physical-operation trace is pinned in ``tests/data``.  Any engine,
scheduler, drive-model, or controller change that alters event ordering
or timing — intentionally or not — shows up as a trace diff.

To regenerate after an *intentional* simulation-semantics change
(review the diff first, and bump ``SPEC_SCHEMA_VERSION`` so cached
results roll over too):

    PYTHONPATH=src python -m tests.runner.golden
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / (
    "golden_trace_pddl13.json"
)

#: The pinned scenario: small enough to run in milliseconds, rich enough
#: (3 clients, multi-unit accesses, SSTF reordering) to exercise queueing.
SCENARIO = dict(
    layout="pddl",
    size_kb=24,
    clients=3,
    seed=1999,
    max_samples=20,
    warmup=0,
    use_stopping_rule=False,
)


def generate_trace() -> list:
    """Run the canonical scenario; return its physical-operation trace."""
    from repro.experiments.response import run_response_point_instrumented
    from repro.sim.instrument import TraceRecorder
    from repro.workload.spec import AccessSpec

    recorder = TraceRecorder()
    run_response_point_instrumented(
        SCENARIO["layout"],
        AccessSpec(SCENARIO["size_kb"], False),
        SCENARIO["clients"],
        seed=SCENARIO["seed"],
        max_samples=SCENARIO["max_samples"],
        warmup=SCENARIO["warmup"],
        use_stopping_rule=SCENARIO["use_stopping_rule"],
        trace=recorder,
    )
    return recorder.entries


def main() -> None:
    trace = generate_trace()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(
            {"scenario": SCENARIO, "trace": trace}, handle, indent=1
        )
        handle.write("\n")
    print(f"wrote {len(trace)} trace entries to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
