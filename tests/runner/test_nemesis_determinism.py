"""Serial vs. parallel determinism of nemesis trials.

The satellite property: any legal :class:`NemesisSchedule` drawn for any
registered layout replays byte-identically from its seed — the whole
composed-fault arc (failures, crashes, resyncs, storms, scrub windows,
oracle verification) is a pure function of the spec, independent of how
many worker processes execute it.  Hypothesis draws the campaign seed
and the schedule envelope; every example spans all five layouts.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.nemesis import NemesisSchedule
from repro.runner import NemesisTrialSpec, ParallelRunner, canonical_json

#: All five registered layouts — the schedule grammar is layout-blind,
#: so determinism must hold across every geometry.
ALL_LAYOUTS = ("datum", "parity-declustering", "raid5", "pddl", "prime")


def _spec_list(seed, max_crashes, max_storms, lse_per_gb):
    return [
        NemesisTrialSpec(
            layout=layout,
            seed=seed,
            max_crashes=max_crashes,
            max_storms=max_storms,
            lse_per_gb=lse_per_gb,
            max_samples=60,
        )
        for layout in ALL_LAYOUTS
    ]


class TestNemesisSerialParallelIdentity:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        max_crashes=st.integers(min_value=0, max_value=2),
        max_storms=st.integers(min_value=0, max_value=1),
        lse_per_gb=st.sampled_from([0.0, 4000.0]),
    )
    def test_records_byte_identical(
        self, seed, max_crashes, max_storms, lse_per_gb
    ):
        specs = _spec_list(seed, max_crashes, max_storms, lse_per_gb)
        serial = ParallelRunner(workers=1).run(specs)
        parallel = ParallelRunner(workers=4).run(specs)
        assert serial.executed == parallel.executed == len(specs)
        assert canonical_json(serial.records) == canonical_json(
            parallel.records
        )

    def test_every_layout_classifies(self):
        """Each layout's record carries a terminal classification and a
        schedule hash matching an independent redraw of the schedule."""
        runner = ParallelRunner(workers=1)
        report = runner.run(_spec_list(3, 2, 1, 0.0))
        for spec, record in zip(_spec_list(3, 2, 1, 0.0), report.records):
            trial = record["nemesis_trial"]
            assert trial["classification"] in ("survived", "data_loss")
            redrawn = NemesisSchedule.draw(
                seed=spec.seed * 1_000_003 + spec.trial,
                n_disks=spec.disks,
                rows=spec.rows,
            )
            assert trial["schedule_hash"] == redrawn.content_hash()


class TestScheduleDrawDeterminism:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_redraw_is_identical_and_legal(self, seed):
        a = NemesisSchedule.draw(seed=seed, n_disks=13, rows=26)
        b = NemesisSchedule.draw(seed=seed, n_disks=13, rows=26)
        assert a == b
        assert a.content_hash() == b.content_hash()
        # validate() raising would mean draw emitted an illegal schedule.
        a.validate(13, 26)

    @pytest.mark.parametrize("layout", ALL_LAYOUTS)
    def test_spec_construction_validates_schedule(self, layout):
        spec = NemesisTrialSpec(layout=layout, seed=11, trial=4)
        schedule = spec.schedule()
        schedule.validate(spec.disks, spec.rows)
        assert schedule == spec.schedule()
