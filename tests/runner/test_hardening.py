"""Runner hardening: crash/hang retries, deterministic failures,
worker-count parsing, and cache corruption recovery."""

import os
import subprocess
import sys
import time

import pytest

from repro.errors import RunnerError
from repro.runner import ParallelRunner, ResultCache, canonical_json
from repro.runner.parallel import default_workers
from repro.runner.spec import CampaignTrialSpec, spec_hash
from repro.runner.workers import CRASH_ONCE_ENV, HANG_ONCE_ENV, run_hardened


def quick_specs(trials=4):
    return [
        CampaignTrialSpec(
            layout="pddl",
            trial=trial,
            seed=5,
            mttf_hours=0.03,
            faults=2,
            degraded_dwell_ms=4000.0,
            rebuild_rows=26,
        )
        for trial in range(trials)
    ]


class TestFaultInjection:
    def test_crashed_worker_costs_a_retry_not_the_run(
        self, tmp_path, monkeypatch
    ):
        specs = quick_specs()
        reference = ParallelRunner(workers=1).run(specs).records

        marker = tmp_path / "crash.marker"
        monkeypatch.setenv(CRASH_ONCE_ENV, str(marker))
        records = run_hardened(
            specs, workers=2, retries=2, backoff_base_s=0.01
        )
        assert marker.exists()  # the injected crash actually fired
        assert canonical_json(records) == canonical_json(reference)

    def test_hung_worker_blows_its_deadline_and_retries(
        self, tmp_path, monkeypatch
    ):
        specs = quick_specs(3)
        reference = ParallelRunner(workers=1).run(specs).records

        marker = tmp_path / "hang.marker"
        monkeypatch.setenv(HANG_ONCE_ENV, str(marker))
        records = run_hardened(
            specs,
            workers=2,
            timeout_s=3.0,
            retries=1,
            backoff_base_s=0.01,
        )
        assert marker.exists()
        assert canonical_json(records) == canonical_json(reference)

    def test_exhausted_retry_budget_raises(self, tmp_path, monkeypatch):
        # With no retry budget the single injected crash is fatal, and
        # the error says which spec spent the budget.
        marker = tmp_path / "crash.marker"
        monkeypatch.setenv(CRASH_ONCE_ENV, str(marker))
        with pytest.raises(RunnerError, match="retry budget"):
            run_hardened(quick_specs(), workers=2, retries=0)


class TestDeterministicFailure:
    def test_deterministic_failure_skips_backoff_entirely(self):
        # A ReproError is a pure function of the spec: the batch must
        # abort without ever entering the capped-exponential backoff
        # schedule.  With a 30s base delay, one slept backoff would blow
        # this timing wall by an order of magnitude.
        bad = CampaignTrialSpec(
            layout="pddl",
            disks=12,  # pddl needs a prime+1 disk count
            trial=0,
            mttf_hours=0.03,
            rebuild_rows=26,
        )
        started = time.monotonic()
        with pytest.raises(RunnerError, match="not retried"):
            run_hardened(
                [bad],
                workers=1,
                retries=5,
                backoff_base_s=30.0,
                backoff_cap_s=30.0,
            )
        assert time.monotonic() - started < 10.0

    def test_environmental_failure_is_retried_with_backoff(self, tmp_path):
        # Non-ReproError exceptions are environmental: the task requeues
        # (with backoff) on a still-healthy worker instead of aborting
        # the batch — exercised via a cache hook that fails exactly once.
        specs = quick_specs(2)
        reference = ParallelRunner(workers=1).run(specs).records

        flaky = tmp_path / "flaky.marker"
        monkeypatch_code = (
            "import os\n"
            "from repro.runner import workers as _wk\n"
            "_orig = _wk.BatchedTrialExecutor.execute\n"
            "def _flaky(self, spec):\n"
            f"    path = {str(flaky)!r}\n"
            "    try:\n"
            "        fd = os.open(path, os.O_CREAT | os.O_EXCL |"
            " os.O_WRONLY)\n"
            "    except OSError:\n"
            "        return _orig(self, spec)\n"
            "    os.close(fd)\n"
            "    raise MemoryError('transient pressure')\n"
            "_wk.BatchedTrialExecutor.execute = _flaky\n"
        )
        site_dir = tmp_path / "site"
        site_dir.mkdir()
        (site_dir / "sitecustomize.py").write_text(
            monkeypatch_code, encoding="utf-8"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(site_dir)] + sys.path
        )
        script = (
            "from repro.runner.workers import run_hardened\n"
            "from repro.runner import canonical_json\n"
            "from repro.runner.spec import CampaignTrialSpec\n"
            "specs = [CampaignTrialSpec(layout='pddl', trial=t, seed=5,"
            " mttf_hours=0.03, faults=2, degraded_dwell_ms=4000.0,"
            " rebuild_rows=26) for t in range(2)]\n"
            "records = run_hardened(specs, workers=1, retries=2,"
            " backoff_base_s=0.01)\n"
            "print(canonical_json(records))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert flaky.exists()  # the injected failure actually fired
        assert proc.stdout.strip() == canonical_json(reference)

    def test_spec_that_raises_is_not_retried(self):
        # pddl needs a prime+1 disk count; 12 fails inside the worker
        # identically every time, so the batch aborts instead of
        # burning the retry budget.
        bad = CampaignTrialSpec(
            layout="pddl",
            disks=12,
            trial=0,
            mttf_hours=0.03,
            rebuild_rows=26,
        )
        with pytest.raises(RunnerError, match="not retried"):
            run_hardened(
                [bad, *quick_specs(2)],
                workers=2,
                retries=3,
                backoff_base_s=0.01,
            )

    def test_parameter_validation(self):
        with pytest.raises(RunnerError):
            run_hardened(quick_specs(2), workers=0)
        with pytest.raises(RunnerError):
            run_hardened(quick_specs(2), workers=2, retries=-1)


class TestDefaultWorkers:
    def test_unset_is_silently_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)
        assert default_workers() == 1

    def test_valid_value_is_used(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "6")
        assert default_workers() == 6

    @pytest.mark.parametrize("raw", ["banana", "0", "-3", "2.5"])
    def test_invalid_values_warn_and_fall_back(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", raw)
        with pytest.warns(RuntimeWarning, match="REPRO_BENCH_WORKERS"):
            assert default_workers() == 1


class TestCacheCorruption:
    def test_truncated_entry_is_quarantined_and_recomputed(self, tmp_path):
        spec = quick_specs(1)[0]
        key = spec_hash(spec)
        cache = ResultCache(tmp_path / "cache")
        runner = ParallelRunner(workers=1, cache=cache)

        first = runner.run([spec])
        assert first.executed == 1
        reference = first.records

        # Simulate a kill mid-write landing under the final name.
        entry = cache.path_for(key)
        entry.write_text('{"spec_hash": "', encoding="utf-8")

        assert cache.get(key) is None
        assert cache.quarantined == 1
        assert entry.with_suffix(".corrupt").exists()

        second = ParallelRunner(workers=1, cache=cache).run([spec])
        assert second.executed == 1  # recomputed, not served corrupt
        assert canonical_json(second.records) == canonical_json(reference)
        # The recompute healed the entry in place.
        assert cache.get(key) == reference[0]
