"""Lifecycle specs through the runner: determinism, caching, assembly.

The runner's byte-determinism contract extends to the fault subsystem: a
FaultScenario-driven lifecycle run must produce byte-identical records
serially, across 4 worker processes, and replayed from the on-disk
cache.
"""

import pytest

from repro.errors import ConfigurationError
from repro.runner import (
    LifecycleSpec,
    ParallelRunner,
    ResultCache,
    canonical_json,
    execute_spec,
    lifecycle_sweep_specs,
    rebuild_load_curves,
    spec_from_dict,
    spec_hash,
    spec_to_dict,
)

LAYOUTS = ("pddl", "parity-declustering")


def _specs(clients=(1, 3), **kwargs):
    kwargs.setdefault("fault_time_ms", 200.0)
    kwargs.setdefault("degraded_dwell_ms", 150.0)
    kwargs.setdefault("rebuild_rows", 13)
    kwargs.setdefault("post_samples", 20)
    kwargs.setdefault("max_samples", 400)
    return lifecycle_sweep_specs(LAYOUTS, clients, **kwargs)


class TestSpec:
    def test_round_trips_through_dict(self):
        spec = LifecycleSpec(
            layout="pddl", mttf_hours=5.0, fault_seed=3, timelines=True
        )
        assert spec_from_dict(spec_to_dict(spec)) == spec
        assert spec_to_dict(spec)["kind"] == "lifecycle"

    def test_hash_stable_and_sensitive(self):
        a = LifecycleSpec(layout="pddl", fault_time_ms=100.0)
        b = LifecycleSpec(layout="pddl", fault_time_ms=100.0)
        c = LifecycleSpec(layout="pddl", fault_time_ms=100.0, clients=5)
        assert spec_hash(a) == spec_hash(b)
        assert spec_hash(a) != spec_hash(c)

    def test_scenario_validation_happens_at_construction(self):
        with pytest.raises(ConfigurationError):
            LifecycleSpec(layout="pddl")  # no fault source
        with pytest.raises(ConfigurationError):
            LifecycleSpec(
                layout="pddl", fault_time_ms=1.0, mttf_hours=2.0
            )
        with pytest.raises(ConfigurationError):
            LifecycleSpec(layout="pddl", fault_time_ms=1.0, clients=0)


class TestDeterminism:
    def test_serial_vs_four_workers_byte_identical(self):
        specs = _specs()
        serial = ParallelRunner(workers=1).run(specs)
        parallel = ParallelRunner(workers=4).run(specs)
        assert serial.executed == parallel.executed == len(specs)
        assert canonical_json(serial.records) == canonical_json(
            parallel.records
        )

    def test_cache_replay_byte_identical(self, tmp_path):
        specs = _specs(clients=(2,))
        cache = ResultCache(tmp_path)
        first = ParallelRunner(workers=1, cache=cache).run(specs)
        replay = ParallelRunner(workers=1, cache=cache).run(specs)
        assert first.executed == len(specs)
        assert replay.executed == 0
        assert replay.cache_hits == len(specs)
        assert canonical_json(first.records) == canonical_json(
            replay.records
        )

    def test_stochastic_fault_is_cacheable_too(self, tmp_path):
        specs = lifecycle_sweep_specs(
            ("pddl",),
            (2,),
            fault_time_ms=None,
            mttf_hours=0.0002,  # fails within ~the first second
            rebuild_rows=13,
            post_samples=10,
            max_samples=300,
        )
        cache = ResultCache(tmp_path)
        first = ParallelRunner(workers=1, cache=cache).run(specs)
        replay = ParallelRunner(workers=1, cache=cache).run(specs)
        assert replay.cache_hits == 1
        assert canonical_json(first.records) == canonical_json(
            replay.records
        )


class TestRecords:
    def test_record_shape(self):
        record = execute_spec(_specs(clients=(2,))[0])
        life = record["lifecycle"]
        assert life["layout"] == "pddl"
        assert life["complete"]
        assert [mode for mode, _ in life["transitions"]] == [
            "fault-free",
            "degraded",
            "reconstruction",
            "post-reconstruction",
        ]
        assert set(life["mode_means_ms"]) == set(record["histograms"])
        assert record["progress"]
        assert record["spec"]["kind"] == "lifecycle"

    def test_rebuild_load_curves_assembly(self):
        report = ParallelRunner(workers=1).run(_specs())
        curves = rebuild_load_curves(report.records)
        assert set(curves) == set(LAYOUTS)
        for curve in curves.values():
            assert [c for c, _ in curve] == [1, 3]
            assert all(ms is not None and ms > 0 for _, ms in curve)
