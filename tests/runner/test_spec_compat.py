"""Hash compatibility for post-v1 spec fields.

The result cache keys on ``spec_hash``; adding fields to a spec class
must not reshuffle the keys of every previously cached sweep.  The
contract: post-v1 fields are *omitted* from the hashed form while at
their inactive defaults, so a spec that does not use a new feature keeps
the hash it had before the feature existed.
"""

from repro.runner.spec import (
    CampaignTrialSpec,
    CorruptionTrialSpec,
    CrashTrialSpec,
    FailSlowTrialSpec,
    LifecycleSpec,
    NemesisTrialSpec,
    OpenLoopSpec,
    spec_from_dict,
    spec_hash,
    spec_to_dict,
)

#: Frozen hashes of feature-inactive specs.  These must never change:
#: a drift here invalidates every result cache in the wild.
PINNED_LIFECYCLE = (
    "04f082384cf33b88e8cdab83559969d7707b27d9ad267e2fd6c69df8d95d1f9a"
)
PINNED_CAMPAIGN = (
    "0f50cd50ec1b61f67812a4b059caf0842a5f8903ac4c2a4e37c5a7e12130d009"
)
PINNED_CRASH = (
    "bc5c1549a9da6d4ba1396cade0848dc779ba6438063f31c244075a1e79c381a0"
)
PINNED_NEMESIS = (
    "670adbb36eff6cf34da78061abd130225e497ddb5b84ad19c38cec2114c01e0f"
)
PINNED_OPENLOOP = (
    "75165b82d6671348fd321254280bfb7de1e00f55b559f71c4afbdd379fed60af"
)
PINNED_FAILSLOW = (
    "c051e0ac80debdaf417603a9d15586f2de932cc37bb2764ba9140386e3400b2c"
)
PINNED_CORRUPTION = (
    "241754da95cdcd7732a395e8a9d8b47dd30e0c8676b9d44511e6e87891ff19ef"
)


def lifecycle():
    return LifecycleSpec(layout="pddl", fault_time_ms=500.0)


def campaign():
    return CampaignTrialSpec(layout="pddl", trial=0, mttf_hours=1000.0)


class TestInactiveDefaultsKeepV1Hashes:
    def test_pinned_hashes(self):
        assert spec_hash(lifecycle()) == PINNED_LIFECYCLE
        assert spec_hash(campaign()) == PINNED_CAMPAIGN
        assert (
            spec_hash(CrashTrialSpec(layout="pddl", crash_boundary=150))
            == PINNED_CRASH
        )
        assert (
            spec_hash(NemesisTrialSpec(layout="pddl")) == PINNED_NEMESIS
        )

    def test_inactive_fields_are_omitted_from_the_hashed_form(self):
        assert "oracle" not in spec_to_dict(lifecycle())
        data = spec_to_dict(campaign())
        assert "oracle" not in data
        assert "transient_io_rate" not in data
        nemesis = spec_to_dict(NemesisTrialSpec(layout="pddl"))
        assert "transient_io_rate" not in nemesis
        assert "lse_per_gb" not in nemesis

    def test_explicit_defaults_hash_identically(self):
        assert spec_hash(
            LifecycleSpec(layout="pddl", fault_time_ms=500.0, oracle=False)
        ) == PINNED_LIFECYCLE
        assert spec_hash(
            CampaignTrialSpec(
                layout="pddl",
                trial=0,
                mttf_hours=1000.0,
                oracle=False,
                transient_io_rate=0.0,
            )
        ) == PINNED_CAMPAIGN
        assert spec_hash(
            NemesisTrialSpec(
                layout="pddl", transient_io_rate=0.0, lse_per_gb=0.0
            )
        ) == PINNED_NEMESIS

    def test_other_kinds_pins_unchanged_by_the_nemesis_kind(self):
        """Registering a new spec kind must not perturb existing hashes —
        the schema version and per-kind payloads are independent."""
        assert spec_hash(lifecycle()) == PINNED_LIFECYCLE
        assert spec_hash(campaign()) == PINNED_CAMPAIGN

    def test_openloop_pin(self):
        """The openloop kind hashes stably (it keys BENCH_traffic.json's
        result-cache entries) and leaves every other pin alone."""
        assert (
            spec_hash(OpenLoopSpec(layout="pddl", rate_per_s=450.0))
            == PINNED_OPENLOOP
        )
        assert spec_hash(lifecycle()) == PINNED_LIFECYCLE
        assert (
            spec_hash(NemesisTrialSpec(layout="pddl")) == PINNED_NEMESIS
        )

    def test_corruption_pin(self):
        """The corruption kind hashes stably (it keys
        BENCH_corruption.json's result-cache entries) and leaves every
        other pin alone."""
        assert (
            spec_hash(CorruptionTrialSpec(layout="pddl", defense="checksum"))
            == PINNED_CORRUPTION
        )
        assert spec_hash(lifecycle()) == PINNED_LIFECYCLE
        assert (
            spec_hash(NemesisTrialSpec(layout="pddl")) == PINNED_NEMESIS
        )

    def test_nemesis_corruption_knobs_omitted_when_inactive(self):
        """The corruption-burst fields ride the same post-v1 contract:
        a burst-free nemesis spec keeps its pre-corruption hash and
        dict form, so no cached nemesis sweep is invalidated."""
        data = spec_to_dict(NemesisTrialSpec(layout="pddl"))
        assert "max_corruption_bursts" not in data
        assert "corruption_rate" not in data
        assert "checksums" not in data
        assert spec_hash(
            NemesisTrialSpec(
                layout="pddl",
                max_corruption_bursts=0,
                corruption_rate=0.05,
                checksums=False,
            )
        ) == PINNED_NEMESIS
        assert spec_hash(
            NemesisTrialSpec(layout="pddl", max_corruption_bursts=1)
        ) != PINNED_NEMESIS
        assert spec_hash(
            NemesisTrialSpec(layout="pddl", checksums=True)
        ) != PINNED_NEMESIS

    def test_failslow_pin(self):
        """The failslow kind hashes stably (it keys
        BENCH_failslow.json's result-cache entries) and leaves every
        other pin alone."""
        assert (
            spec_hash(FailSlowTrialSpec(layout="pddl", defense="hedge"))
            == PINNED_FAILSLOW
        )
        assert spec_hash(lifecycle()) == PINNED_LIFECYCLE
        assert spec_hash(campaign()) == PINNED_CAMPAIGN
        assert (
            spec_hash(OpenLoopSpec(layout="pddl", rate_per_s=450.0))
            == PINNED_OPENLOOP
        )


class TestActiveFeaturesChangeTheHash:
    def test_oracle_on(self):
        assert spec_hash(
            LifecycleSpec(layout="pddl", fault_time_ms=500.0, oracle=True)
        ) != PINNED_LIFECYCLE
        assert spec_hash(
            CampaignTrialSpec(
                layout="pddl", trial=0, mttf_hours=1000.0, oracle=True
            )
        ) != PINNED_CAMPAIGN

    def test_transient_rate_on(self):
        assert spec_hash(
            CampaignTrialSpec(
                layout="pddl",
                trial=0,
                mttf_hours=1000.0,
                transient_io_rate=0.01,
            )
        ) != PINNED_CAMPAIGN

    def test_nemesis_optionals_on(self):
        assert spec_hash(
            NemesisTrialSpec(layout="pddl", transient_io_rate=0.01)
        ) != PINNED_NEMESIS
        assert spec_hash(
            NemesisTrialSpec(layout="pddl", lse_per_gb=5000.0)
        ) != PINNED_NEMESIS

    def test_nemesis_envelope_fields_matter(self):
        base = NemesisTrialSpec(layout="pddl")
        assert spec_hash(
            NemesisTrialSpec(layout="pddl", max_crashes=1)
        ) != spec_hash(base)
        assert spec_hash(
            NemesisTrialSpec(layout="pddl", trial=1)
        ) != spec_hash(base)

    def test_crash_spec_fields_matter(self):
        base = CrashTrialSpec(layout="pddl", crash_boundary=150)
        assert spec_hash(
            CrashTrialSpec(layout="pddl", crash_boundary=150, journal=False)
        ) != spec_hash(base)
        assert spec_hash(
            CrashTrialSpec(
                layout="pddl", crash_boundary=150, journal_latency_ms=5.0
            )
        ) != spec_hash(base)


class TestRoundTrip:
    def test_active_specs_survive_dict_round_trip(self):
        for spec in (
            LifecycleSpec(layout="pddl", fault_time_ms=500.0, oracle=True),
            CampaignTrialSpec(
                layout="pddl",
                trial=3,
                mttf_hours=1000.0,
                oracle=True,
                transient_io_rate=0.02,
            ),
            CrashTrialSpec(layout="prime", crash_boundary=60, clients=8),
            NemesisTrialSpec(
                layout="prime", trial=9, lse_per_gb=2000.0, max_storms=2
            ),
            OpenLoopSpec(
                layout="prime",
                rate_per_s=550.0,
                arrival="mmpp",
                phase="rebuild",
                timelines=True,
            ),
            CorruptionTrialSpec(
                layout="raid5",
                defense="audit",
                trial=7,
                lost_rate=0.05,
                fail_at_ms=9000.0,
            ),
            NemesisTrialSpec(
                layout="pddl",
                trial=2,
                max_corruption_bursts=2,
                corruption_rate=0.1,
                checksums=True,
            ),
        ):
            clone = spec_from_dict(spec_to_dict(spec))
            assert clone == spec
            assert spec_hash(clone) == spec_hash(spec)
