"""The canonical golden lifecycle scenario (and its regenerator).

A short, fixed-seed lifecycle run of the 13-disk PDDL array whose
mode-transition timestamps, rebuild bookkeeping, and progress timeline
are pinned in ``tests/data``.  Any change to the fault injector, the
lifecycle state machine, the reconstructor, or the underlying simulation
that shifts when the array changes regime shows up as a diff here.

To regenerate after an *intentional* semantics change (review the diff
first, and bump ``SPEC_SCHEMA_VERSION`` so cached lifecycle records roll
over too):

    PYTHONPATH=src python -m tests.runner.golden_lifecycle
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / (
    "golden_lifecycle_pddl13.json"
)

#: The pinned scenario: one dwell window and a two-period rebuild, so
#: every regime is entered at a distinct, queueing-dependent time.
SPEC_FIELDS = dict(
    layout="pddl",
    size_kb=24,
    clients=3,
    seed=1999,
    fault_time_ms=400.0,
    degraded_dwell_ms=250.0,
    rebuild_rows=26,
    post_samples=30,
    max_samples=900,
)


def generate_summary() -> dict:
    """Run the canonical lifecycle spec; return its pinned-able summary."""
    from repro.runner import LifecycleSpec, execute_spec

    record = execute_spec(LifecycleSpec(**SPEC_FIELDS))
    life = record["lifecycle"]
    return {
        "transitions": life["transitions"],
        "fault_time_ms": life["fault_time_ms"],
        "fault_disk": life["fault_disk"],
        "rebuild_duration_ms": life["rebuild_duration_ms"],
        "rebuild_steps": life["rebuild_steps"],
        "samples": life["samples"],
        "mode_counts": {
            mode: histogram["count"]
            for mode, histogram in record["histograms"].items()
        },
        "progress": record["progress"],
    }


def main() -> None:
    summary = generate_summary()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(
            {"spec": SPEC_FIELDS, "summary": summary}, handle, indent=1
        )
        handle.write("\n")
    print(
        f"wrote {len(summary['transitions'])} transitions to {GOLDEN_PATH}"
    )


if __name__ == "__main__":
    main()
