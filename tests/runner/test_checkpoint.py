"""RunCheckpoint: tolerant loads, fsynced appends, kill/resume parity."""

import json

import pytest

from repro.runner import ParallelRunner, RunCheckpoint, canonical_json
from repro.runner.spec import CampaignTrialSpec, LifecycleSpec, spec_hash


def quick_specs(trials=6):
    return [
        CampaignTrialSpec(
            layout="pddl",
            trial=trial,
            seed=3,
            mttf_hours=0.03,
            faults=2,
            degraded_dwell_ms=4000.0,
            rebuild_rows=26,
        )
        for trial in range(trials)
    ]


class TestLoad:
    def test_missing_file_is_an_empty_checkpoint(self, tmp_path):
        cp = RunCheckpoint(tmp_path / "run.jsonl")
        assert len(cp) == 0
        assert cp.corrupt_lines == 0
        assert cp.get("ab" * 32) is None

    def test_truncated_tail_is_skipped_not_raised(self, tmp_path):
        path = tmp_path / "run.jsonl"
        good = [
            {"spec_hash": "aa" * 32, "x": 1},
            {"spec_hash": "bb" * 32, "x": 2},
        ]
        with open(path, "w", encoding="utf-8") as handle:
            for record in good:
                handle.write(json.dumps(record) + "\n")
            # A kill mid-write leaves a torn final line.
            handle.write('{"spec_hash": "cc')
        cp = RunCheckpoint(path)
        assert len(cp) == 2
        assert cp.corrupt_lines == 1
        assert cp.get("aa" * 32)["x"] == 1
        assert cp.get("bb" * 32)["x"] == 2

    def test_records_without_a_hash_count_as_corrupt(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"x": 1}\n[1, 2, 3]\n', encoding="utf-8")
        cp = RunCheckpoint(path)
        assert len(cp) == 0
        assert cp.corrupt_lines == 2


class TestAppend:
    def test_append_requires_a_spec_hash(self, tmp_path):
        cp = RunCheckpoint(tmp_path / "run.jsonl")
        with pytest.raises(ValueError):
            cp.append({"x": 1})

    def test_appends_survive_a_reload(self, tmp_path):
        path = tmp_path / "run.jsonl"
        cp = RunCheckpoint(path)
        cp.append({"spec_hash": "ab" * 32, "x": 1})
        cp.append({"spec_hash": "cd" * 32, "x": 2})
        reloaded = RunCheckpoint(path)
        assert sorted(reloaded.keys()) == sorted(cp.keys())
        assert reloaded.get("cd" * 32)["x"] == 2


class TestResume:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_interrupted_run_resumes_byte_identically(
        self, tmp_path, workers
    ):
        specs = quick_specs()
        reference = ParallelRunner(workers=workers).run(specs).records

        # "Kill" a run after half the trials: seed the checkpoint with
        # the records a dying run would have persisted.
        path = tmp_path / "run.jsonl"
        partial = RunCheckpoint(path)
        for spec, record in zip(specs[:3], reference[:3]):
            assert record["spec_hash"] == spec_hash(spec)
            partial.append(record)

        resumed = ParallelRunner(
            workers=workers, checkpoint=RunCheckpoint(path)
        ).run(specs)
        assert resumed.checkpoint_hits == 3
        assert resumed.executed == 3
        assert canonical_json(resumed.records) == canonical_json(reference)

    def test_completed_checkpoint_reruns_nothing(self, tmp_path):
        specs = quick_specs(4)
        path = tmp_path / "run.jsonl"
        first = ParallelRunner(
            workers=1, checkpoint=RunCheckpoint(path)
        ).run(specs)
        assert first.executed == 4

        second = ParallelRunner(
            workers=1, checkpoint=RunCheckpoint(path)
        ).run(specs)
        assert second.executed == 0
        assert second.checkpoint_hits == 4
        assert canonical_json(second.records) == canonical_json(
            first.records
        )


class TestHashStability:
    def test_lifecycle_spec_hash_is_pinned(self):
        # Checkpoints and caches key on this; a drift silently orphans
        # every existing record.  Do not update this value.
        assert spec_hash(LifecycleSpec(layout="pddl", fault_time_ms=500.0)) == (
            "04f082384cf33b88e8cdab83559969d7"
            "707b27d9ad267e2fd6c69df8d95d1f9a"
        )
