"""Serial vs. parallel determinism of the experiment runner.

The contract: a spec list produces byte-identical result records (same
seeds -> same histograms, same instrumentation, same everything) no
matter how many worker processes execute it.  The property-based test
draws seeds/workloads with hypothesis while every example spans four
layouts, and runs under two different worker counts.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runner import (
    ExperimentSpec,
    ParallelRunner,
    canonical_json,
    execute_spec,
)

#: >= 3 layouts, per the harness requirement; four keeps examples cheap.
PROPERTY_LAYOUTS = ("pddl", "raid5", "datum", "prime")


def _spec_list(layouts, seed, clients, size_kb, mode="ff"):
    return [
        ExperimentSpec(
            layout=layout,
            size_kb=size_kb,
            clients=clients,
            mode=mode,
            seed=seed,
            max_samples=8,
            warmup=1,
        )
        for layout in layouts
    ]


class TestSerialParallelIdentity:
    @pytest.mark.parametrize("workers", [2, 3])
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        clients=st.integers(min_value=1, max_value=3),
        size_kb=st.sampled_from([8, 24, 48]),
    )
    def test_records_byte_identical(self, workers, seed, clients, size_kb):
        specs = _spec_list(PROPERTY_LAYOUTS, seed, clients, size_kb)
        serial = ParallelRunner(workers=1).run(specs)
        parallel = ParallelRunner(workers=workers).run(specs)
        assert serial.executed == parallel.executed == len(specs)
        assert canonical_json(serial.records) == canonical_json(
            parallel.records
        )

    def test_degraded_mode_identical(self):
        specs = _spec_list(PROPERTY_LAYOUTS, seed=7, clients=2, size_kb=24,
                           mode="f1")
        serial = ParallelRunner(workers=1).run(specs)
        parallel = ParallelRunner(workers=4).run(specs)
        assert canonical_json(serial.records) == canonical_json(
            parallel.records
        )

    def test_histograms_match_seed_for_seed(self):
        # Same seed -> same histogram; different seed -> (here) different.
        spec = ExperimentSpec(layout="pddl", size_kb=24, clients=2, seed=11,
                              max_samples=10, warmup=0)
        respun = ExperimentSpec(layout="pddl", size_kb=24, clients=2,
                                seed=11, max_samples=10, warmup=0)
        other = ExperimentSpec(layout="pddl", size_kb=24, clients=2, seed=12,
                               max_samples=10, warmup=0)
        assert (
            execute_spec(spec)["histogram"]
            == execute_spec(respun)["histogram"]
        )
        assert (
            execute_spec(spec)["histogram"]
            != execute_spec(other)["histogram"]
        )

    def test_duplicate_specs_computed_once(self):
        spec = ExperimentSpec(layout="raid5", size_kb=8, clients=1, seed=3,
                              max_samples=6, warmup=0)
        report = ParallelRunner(workers=1).run([spec, spec, spec])
        assert report.executed == 1
        assert len(report.records) == 3
        assert report.records[0] == report.records[1] == report.records[2]

    def test_table1_cells_identical_across_workers(self):
        from repro.runner import table1_specs

        specs = table1_specs([5, 6, 7], [1, 2], restarts=3, max_steps=300)
        serial = ParallelRunner(workers=1).run(specs)
        parallel = ParallelRunner(workers=2).run(specs)
        assert canonical_json(serial.records) == canonical_json(
            parallel.records
        )
