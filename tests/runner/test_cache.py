"""Result-cache behaviour: hits, misses, hash stability, corruption.

The cache may only ever cost recomputation time — a damaged entry must
read as a miss, never as a crash or a wrong record.
"""

import json
import subprocess
import sys
from pathlib import Path

from repro.runner import (
    ExperimentSpec,
    ParallelRunner,
    ResultCache,
    Table1Spec,
    canonical_json,
    spec_from_dict,
    spec_hash,
    spec_to_dict,
)

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _small_spec(seed=0):
    return ExperimentSpec(layout="pddl", size_kb=8, clients=1, seed=seed,
                          max_samples=6, warmup=0)


class TestHitMiss:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _small_spec()
        first = ParallelRunner(workers=1, cache=cache).run([spec])
        assert first.executed == 1 and first.cache_hits == 0
        second = ParallelRunner(workers=1, cache=cache).run([spec])
        assert second.executed == 0 and second.cache_hits == 1
        assert canonical_json(first.records) == canonical_json(
            second.records
        )

    def test_different_spec_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        ParallelRunner(workers=1, cache=cache).run([_small_spec(seed=0)])
        report = ParallelRunner(workers=1, cache=cache).run(
            [_small_spec(seed=1)]
        )
        assert report.executed == 1 and report.cache_hits == 0
        assert len(cache) == 2

    def test_overlapping_sweep_partial_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        ParallelRunner(workers=1, cache=cache).run(
            [_small_spec(0), _small_spec(1)]
        )
        report = ParallelRunner(workers=1, cache=cache).run(
            [_small_spec(1), _small_spec(2)]
        )
        assert report.executed == 1 and report.cache_hits == 1

    def test_fan_out_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _small_spec()
        ParallelRunner(workers=1, cache=cache).run([spec])
        key = spec_hash(spec)
        path = cache.path_for(key)
        assert path.exists()
        assert path.parent.name == key[:2]


class TestHashStability:
    # Pinned values: if these move, every deployed cache silently
    # invalidates — that must be a deliberate SPEC_SCHEMA_VERSION bump,
    # not an accidental field/encoding change.
    PINNED_RESPONSE = (
        "752b85f028b4022c8ba844133b7205b165828cbc837c303a5a668c0d563017ff"
    )
    PINNED_TABLE1 = (
        "2ac93f6cb8d17401f105ffb9090c501697b65015660da84c9467773abb86cd80"
    )

    def test_pinned_hashes(self):
        spec = ExperimentSpec(layout="pddl", size_kb=96, clients=8, seed=5)
        assert spec_hash(spec) == self.PINNED_RESPONSE
        assert spec_hash(Table1Spec(k=6, g=3)) == self.PINNED_TABLE1

    def test_stable_across_process_restarts(self):
        spec = ExperimentSpec(layout="pddl", size_kb=96, clients=8, seed=5)
        code = (
            "from repro.runner import ExperimentSpec, spec_hash;"
            "print(spec_hash(ExperimentSpec(layout='pddl', size_kb=96,"
            " clients=8, seed=5)), end='')"
        )
        fresh = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": REPO_SRC, "PYTHONHASHSEED": "random"},
        )
        assert fresh.stdout == spec_hash(spec)

    def test_spec_round_trips_through_dict(self):
        for spec in (
            _small_spec(3),
            ExperimentSpec(layout="raid5", mode="f1", is_write=True,
                           size_kb=48, clients=4),
            Table1Spec(k=7, g=2, restarts=5),
        ):
            clone = spec_from_dict(spec_to_dict(spec))
            assert clone == spec
            assert spec_hash(clone) == spec_hash(spec)


class TestCorruption:
    def test_truncated_json_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _small_spec()
        good = ParallelRunner(workers=1, cache=cache).run([spec])
        key = spec_hash(spec)
        path = cache.path_for(key)
        # Truncate mid-record: the classic kill -9 halfway through a write
        # under a non-atomic writer.
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        report = ParallelRunner(workers=1, cache=cache).run([spec])
        assert report.executed == 1 and report.cache_hits == 0
        assert canonical_json(report.records) == canonical_json(
            good.records
        )
        # And the entry was repaired on the way through.
        healed = ParallelRunner(workers=1, cache=cache).run([spec])
        assert healed.executed == 0 and healed.cache_hits == 1

    def test_garbage_bytes_recompute(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _small_spec()
        key = spec_hash(spec)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"\x00\xffnot json at all")
        report = ParallelRunner(workers=1, cache=cache).run([spec])
        assert report.executed == 1

    def test_wrong_record_in_right_file_rejected(self, tmp_path):
        # An entry whose embedded spec_hash disagrees with its filename
        # (e.g. a file copied between cache dirs) must not be served.
        cache = ResultCache(tmp_path)
        spec = _small_spec()
        key = spec_hash(spec)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"spec_hash": "f" * 64, "point": {}}))
        assert cache.get(key) is None
        report = ParallelRunner(workers=1, cache=cache).run([spec])
        assert report.executed == 1

    def test_non_dict_entry_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("[1, 2, 3]")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        ParallelRunner(workers=1, cache=cache).run(
            [_small_spec(0), _small_spec(1)]
        )
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0
