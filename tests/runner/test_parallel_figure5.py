"""Acceptance: the Figure 5 sweep through the parallel runner.

A scaled-down (but structurally complete: all five layouts, multiple
sizes and client counts) Figure 5 sweep must (1) produce byte-identical
result records with 4 workers vs. serial, and (2) complete entirely
from cache on a second invocation, executing zero simulations.
"""

from repro.runner import (
    ParallelRunner,
    ResultCache,
    canonical_json,
    curves_from_records,
    figure5_specs,
)

SWEEP = dict(sizes_kb=(8, 48), clients=(1, 4), samples=16, seed=0)


class TestFigure5Parallel:
    def test_parallel_matches_serial_and_cache_replays(self, tmp_path):
        specs = figure5_specs(**SWEEP)
        assert len(specs) == 2 * 5 * 2  # sizes x layouts x clients

        serial = ParallelRunner(workers=1).run(specs)
        assert serial.executed == len(specs)

        cache = ResultCache(tmp_path)
        parallel = ParallelRunner(workers=4, cache=cache).run(specs)
        assert parallel.executed == len(specs)
        assert canonical_json(parallel.records) == canonical_json(
            serial.records
        )

        # Second invocation: all cache, zero simulations executed.
        replay = ParallelRunner(workers=4, cache=cache).run(specs)
        assert replay.executed == 0
        assert replay.cache_hits == len(specs)
        assert canonical_json(replay.records) == canonical_json(
            serial.records
        )

    def test_records_reassemble_into_figure_panels(self):
        specs = figure5_specs(**SWEEP)
        report = ParallelRunner(workers=1).run(specs)
        panels = curves_from_records(report.records)
        assert sorted(panels) == [8, 48]
        for curves in panels.values():
            assert sorted(curves) == sorted(
                ["datum", "parity-declustering", "raid5", "pddl", "prime"]
            )
            for curve in curves.values():
                assert [p.clients for p in curve.points] == [1, 4]
                assert all(p.samples > 0 for p in curve.points)

    def test_instrumentation_present_and_sane(self):
        specs = figure5_specs(sizes_kb=(8,), clients=(4,), samples=12,
                              seed=1, layouts=("pddl",))
        record = ParallelRunner(workers=1).run(specs).records[0]
        inst = record["instrumentation"]
        assert inst["engine"]["events_processed"] > 0
        assert inst["engine"]["heap_high_water"] >= 1
        assert len(inst["disks"]) == 13
        assert sum(d["operations"] for d in inst["disks"]) > 0
        assert inst["max_queue_high_water"] >= 1
        assert record["histogram"]["count"] == sum(
            record["histogram"]["counts"].values()
        )

    def test_timelines_when_requested(self):
        from repro.runner import ExperimentSpec

        spec = ExperimentSpec(layout="pddl", size_kb=24, clients=2, seed=2,
                              max_samples=8, warmup=0, timelines=True)
        record = ParallelRunner(workers=1).run([spec]).records[0]
        disks = record["instrumentation"]["disks"]
        assert any(d.get("queue_timeline") for d in disks)
        busiest = max(disks, key=lambda d: d["busy_ms"])
        # Busy-time series is cumulative and ends at the disk's total.
        values = [v for _, v in busiest["busy_timeline"]]
        assert values == sorted(values)
        assert abs(values[-1] - busiest["busy_ms"]) < 1e-9
