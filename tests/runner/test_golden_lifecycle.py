"""Golden lifecycle-trace regression tests.

The canonical 13-disk PDDL lifecycle run must reproduce its pinned
mode-transition timestamps, rebuild bookkeeping, and progress timeline
*exactly* — JSON round-trips doubles losslessly, so equality here is
bit-equality.  Guards the fault injector, the lifecycle state machine,
and the reconstructor against silent timing drift.
"""

import json

from tests.runner.golden_lifecycle import GOLDEN_PATH, generate_summary


def _load_golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestGoldenLifecycle:
    def test_summary_matches_exactly(self):
        golden = _load_golden()
        summary = generate_summary()
        for key, pinned in golden["summary"].items():
            assert summary[key] == pinned, (
                f"lifecycle diverges at {key!r}:\n"
                f"  ours:   {summary[key]}\n  pinned: {pinned}\n"
                "If the simulation semantics changed intentionally,"
                " regenerate with"
                " `python -m tests.runner.golden_lifecycle`"
                " and bump SPEC_SCHEMA_VERSION."
            )
        assert summary == golden["summary"]

    def test_summary_is_reproducible_within_process(self):
        assert generate_summary() == generate_summary()

    def test_golden_scenario_is_nontrivial(self):
        golden = _load_golden()
        summary = golden["summary"]
        assert [mode for mode, _ in summary["transitions"]] == [
            "fault-free",
            "degraded",
            "reconstruction",
            "post-reconstruction",
        ]
        # Every regime collected samples, and the rebuild did real work
        # under load (its finish time is queueing-dependent, not a round
        # number).
        assert all(count > 0 for count in summary["mode_counts"].values())
        assert summary["rebuild_steps"] == 24
        assert len(summary["progress"]) == 24
        assert summary["rebuild_duration_ms"] % 1 != 0
