"""Tests for block designs."""

from math import comb

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.designs.bibd import BlockDesign, complete_block_design
from repro.errors import DesignError

FANO = [(0, 1, 3), (1, 2, 4), (2, 3, 5), (3, 4, 6), (4, 5, 0), (5, 6, 1), (6, 0, 2)]


class TestConstruction:
    def test_fano(self):
        d = BlockDesign(7, FANO)
        assert d.v == 7 and d.k == 3 and d.b == 7

    def test_rejects_mixed_block_sizes(self):
        with pytest.raises(DesignError):
            BlockDesign(5, [(0, 1), (2, 3, 4)])

    def test_rejects_repeated_point(self):
        with pytest.raises(DesignError):
            BlockDesign(5, [(0, 0, 1)])

    def test_rejects_out_of_range_point(self):
        with pytest.raises(DesignError):
            BlockDesign(5, [(0, 1, 5)])

    def test_rejects_empty(self):
        with pytest.raises(DesignError):
            BlockDesign(5, [])
        with pytest.raises(DesignError):
            BlockDesign(1, [(0,)])


class TestBalance:
    def test_fano_is_bibd(self):
        d = BlockDesign(7, FANO)
        d.validate_bibd()
        assert d.lambda_ == 1
        assert set(d.replication_counts()) == {3}

    def test_unbalanced_design(self):
        d = BlockDesign(4, [(0, 1), (0, 1), (2, 3)])
        assert not d.is_balanced()
        with pytest.raises(DesignError):
            _ = d.lambda_
        with pytest.raises(DesignError):
            d.validate_bibd()
        assert d.max_pair_imbalance() == 2

    def test_pair_counts_complete(self):
        d = BlockDesign(7, FANO)
        counts = d.pair_counts()
        assert len(counts) == comb(7, 2)
        assert set(counts.values()) == {1}


class TestCompleteBlockDesign:
    def test_block_count(self):
        for v, k in [(4, 2), (5, 3), (6, 4), (13, 4)]:
            assert complete_block_design(v, k).b == comb(v, k)

    def test_colex_order(self):
        d = complete_block_design(4, 2)
        assert d.blocks == ((0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3))

    def test_is_bibd(self):
        d = complete_block_design(6, 3)
        d.validate_bibd()
        assert d.lambda_ == comb(4, 1)  # C(v-2, k-2)

    def test_invalid_params(self):
        with pytest.raises(DesignError):
            complete_block_design(3, 4)
        with pytest.raises(DesignError):
            complete_block_design(5, 1)

    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=2, max_value=7))
    def test_replication_uniform(self, v, k):
        if k > v:
            return
        d = complete_block_design(v, k)
        assert set(d.replication_counts()) == {comb(v - 1, k - 1)}


class TestEquality:
    def test_eq_and_hash(self):
        a = BlockDesign(7, FANO)
        b = BlockDesign(7, FANO)
        assert a == b and hash(a) == hash(b)
        assert a != BlockDesign(7, FANO[1:] + FANO[:1])
