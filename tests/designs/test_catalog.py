"""Tests for the design catalog."""

import pytest

from repro.designs.catalog import known_bibd, known_difference_set
from repro.designs.difference import is_difference_set
from repro.errors import DesignError


class TestKnownDifferenceSets:
    @pytest.mark.parametrize(
        "v,k", [(7, 3), (13, 4), (21, 5), (31, 6), (11, 5), (15, 7)]
    )
    def test_cataloged_sets_are_valid(self, v, k):
        block = known_difference_set(v, k)
        lam = k * (k - 1) // (v - 1)
        assert is_difference_set(block, v, lam)

    def test_uncataloged_falls_back_to_search(self):
        block = known_difference_set(5, 4)  # trivial near-complete design
        assert is_difference_set(block, 5, lam=3)


class TestKnownBibd:
    def test_paper_13_4_design(self):
        d = known_bibd(13, 4)
        d.validate_bibd()
        assert (d.v, d.k, d.b, d.lambda_) == (13, 4, 13, 1)

    def test_family_backed_design(self):
        d = known_bibd(13, 3)
        d.validate_bibd()
        assert d.lambda_ == 1

    def test_search_fallback(self):
        d = known_bibd(5, 4)
        d.validate_bibd()

    def test_impossible_raises(self):
        with pytest.raises(DesignError):
            known_bibd(8, 3)
