"""Tests for near-resolvable design machinery."""

import pytest

from repro.designs.bibd import BlockDesign
from repro.designs.difference import develop_difference_family
from repro.designs.resolvable import (
    classes_from_rows,
    is_near_resolvable,
    near_resolvable_classes,
)
from repro.errors import DesignError


class TestNearResolvable:
    def test_bose_family_is_nrd(self):
        d = develop_difference_family([[1, 2, 4], [3, 6, 5]], 7)
        classes = near_resolvable_classes(d)
        assert len(classes) == 7
        assert [missed for missed, _ in classes] == list(range(7))
        for missed, blocks in classes:
            covered = set()
            for block in blocks:
                assert covered.isdisjoint(block)
                covered.update(block)
            assert covered == set(range(7)) - {missed}

    def test_is_near_resolvable_true(self):
        d = develop_difference_family([[1, 2, 4], [3, 6, 5]], 7)
        assert is_near_resolvable(d)

    def test_fano_is_not_nrd(self):
        # v - 1 = 6 is divisible by k = 3 but the 7 blocks cannot form near
        # parallel classes (7 is not a multiple of 2 classes-of-2).
        fano = BlockDesign(
            7,
            [(0, 1, 3), (1, 2, 4), (2, 3, 5), (3, 4, 6), (4, 5, 0), (5, 6, 1), (6, 0, 2)],
        )
        assert not is_near_resolvable(fano)

    def test_wrong_divisibility(self):
        d = BlockDesign(6, [(0, 1, 2), (3, 4, 5)])
        with pytest.raises(DesignError):
            near_resolvable_classes(d)


class TestClassesFromRows:
    def test_valid_rows(self):
        rows = [
            [(1, 2, 4), (3, 6, 5)],
            [(2, 3, 5), (4, 0, 6)],
        ]
        classes = classes_from_rows(rows, 7)
        assert classes[0][0] == 0
        assert classes[1][0] == 1

    def test_overlapping_stripes_rejected(self):
        with pytest.raises(DesignError):
            classes_from_rows([[(0, 1, 2), (2, 3, 4)]], 7)

    def test_wrong_miss_count_rejected(self):
        with pytest.raises(DesignError):
            classes_from_rows([[(0, 1, 2)]], 7)
