"""Tests for difference sets and families."""

import pytest

from repro.designs.difference import (
    develop_difference_family,
    develop_difference_set,
    difference_multiset,
    find_difference_set,
    is_difference_family,
    is_difference_set,
)
from repro.errors import DesignError


class TestDifferenceMultiset:
    def test_symmetric(self):
        counts = difference_multiset([0, 1, 3], 7)
        # each difference d appears as often as -d
        for d, c in counts.items():
            assert counts[(7 - d) % 7] == c

    def test_total_count(self):
        block = [0, 2, 5, 6]
        counts = difference_multiset(block, 13)
        assert sum(counts.values()) == len(block) * (len(block) - 1)


class TestDifferenceSet:
    def test_singer_13_4(self):
        assert is_difference_set([0, 1, 3, 9], 13, lam=1)

    def test_fano_7_3(self):
        assert is_difference_set([0, 1, 3], 7, lam=1)

    def test_biplane_11_5(self):
        assert is_difference_set([0, 1, 2, 4, 7], 11, lam=2)

    def test_not_a_difference_set(self):
        assert not is_difference_set([0, 1, 2, 3], 13, lam=1)

    def test_translation_invariance(self):
        base = [0, 1, 3, 9]
        for t in range(13):
            shifted = [(x + t) % 13 for x in base]
            assert is_difference_set(shifted, 13, lam=1)


class TestDifferenceFamily:
    def test_bose_blocks_for_seven_disks(self):
        # Paper §3: B1 = {1,2,4}, B2 = {3,6,5} — a (7,3,2) family.
        assert is_difference_family([[1, 2, 4], [3, 6, 5]], 7, lam=2)

    def test_netto_13_3(self):
        assert is_difference_family([[0, 1, 4], [0, 2, 7]], 13, lam=1)

    def test_not_a_family(self):
        assert not is_difference_family([[0, 1, 2], [0, 1, 3]], 7, lam=2)


class TestDevelopment:
    def test_develop_13_4(self):
        d = develop_difference_set([0, 1, 3, 9], 13)
        d.validate_bibd()
        assert d.b == 13
        assert d.lambda_ == 1

    def test_develop_family(self):
        d = develop_difference_family([[0, 1, 4], [0, 2, 7]], 13)
        d.validate_bibd()
        assert d.b == 26
        assert d.lambda_ == 1

    def test_develop_rejects_nonset(self):
        with pytest.raises(DesignError):
            develop_difference_set([0, 1, 2, 3], 13)

    def test_develop_rejects_bad_sizes(self):
        # k(k-1) not divisible by v-1.
        with pytest.raises(DesignError):
            develop_difference_set([0, 1, 3], 8)


class TestSearch:
    def test_finds_fano(self):
        assert find_difference_set(7, 3) == (0, 1, 3)

    def test_finds_13_4(self):
        block = find_difference_set(13, 4)
        assert is_difference_set(block, 13, lam=1)

    def test_divisibility_shortcut(self):
        with pytest.raises(DesignError):
            find_difference_set(8, 3)

    def test_nonexistent_raises(self):
        # (16, 6, 2) difference sets in Z_16 do not exist (known result).
        with pytest.raises(DesignError):
            find_difference_set(16, 6)
