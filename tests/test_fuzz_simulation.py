"""Randomized end-to-end fuzzing of the simulator.

Hypothesis drives random mixed access streams against random layouts and
modes; whatever the combination, every submitted access must complete,
no request may touch a failed disk, and the engine must drain.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.array.controller import ArrayController, LogicalAccess
from repro.layouts import make_layout
from repro.sim.engine import SimulationEngine

LAYOUT_CONFIGS = [
    ("pddl", 13, 4),
    ("raid5", 13, 13),
    ("datum", 13, 4),
    ("prime", 13, 4),
    ("parity-declustering", 13, 4),
    ("relpr", 13, 4),
]


@st.composite
def scenarios(draw):
    name, n, k = draw(st.sampled_from(LAYOUT_CONFIGS))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    count = draw(st.integers(min_value=1, max_value=25))
    failure = draw(
        st.one_of(st.none(), st.integers(min_value=0, max_value=n - 1))
    )
    post = draw(st.booleans())
    return name, n, k, seed, count, failure, post


@given(scenarios())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_traffic_always_completes(scenario):
    name, n, k, seed, count, failure, post = scenario
    engine = SimulationEngine()
    controller = ArrayController(engine, make_layout(name, n, k))
    if failure is not None:
        controller.fail_disk(failure)
        if post and controller.layout.has_sparing:
            controller.finish_reconstruction()

    rng = random.Random(seed)
    completed = []
    for i in range(count):
        span = rng.randint(1, 42)
        start = rng.randrange(controller.addressable_data_units - span)
        access = LogicalAccess(
            access_id=i,
            first_unit=start,
            unit_count=span,
            is_write=rng.random() < 0.5,
        )
        controller.submit(
            access, lambda acc, ms: completed.append((acc.access_id, ms))
        )
    engine.run()

    # Every access completed exactly once, in finite simulated time.
    assert sorted(i for i, _ in completed) == list(range(count))
    assert all(ms > 0 for _, ms in completed)
    assert engine.pending() == 0
    # The failed disk serviced nothing.
    if failure is not None:
        assert controller.servers[failure].stats.operations == 0
    # Servers all idle at drain.
    assert not any(server.busy for server in controller.servers)
