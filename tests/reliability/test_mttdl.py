"""Tests for the MTTDL reliability models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.reliability.mttdl import (
    mttdl_declustered,
    mttdl_distributed_sparing,
    mttdl_raid5,
    rebuild_hours_from_simulation,
)

MTTF = 500_000.0  # hours (typical 1990s datasheet figure)


class TestRaid5:
    def test_classic_formula(self):
        r = mttdl_raid5(13, MTTF, 24.0)
        assert r.mttdl_hours == pytest.approx(MTTF**2 / (13 * 12 * 24.0))

    def test_more_disks_less_reliable(self):
        assert (
            mttdl_raid5(20, MTTF, 24.0).mttdl_hours
            < mttdl_raid5(10, MTTF, 24.0).mttdl_hours
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mttdl_raid5(1, MTTF, 24.0)
        with pytest.raises(ConfigurationError):
            mttdl_raid5(13, MTTF, -1.0)
        with pytest.raises(ConfigurationError):
            mttdl_raid5(13, 10.0, 24.0)  # repair >= mttf


class TestDeclustering:
    def test_narrow_stripes_more_reliable(self):
        wide = mttdl_declustered(13, 13, MTTF, 24.0)
        narrow = mttdl_declustered(13, 4, MTTF, 24.0)
        assert narrow.mttdl_hours > wide.mttdl_hours

    def test_k_equals_n_matches_raid5(self):
        assert mttdl_declustered(13, 13, MTTF, 24.0).mttdl_hours == (
            pytest.approx(mttdl_raid5(13, MTTF, 24.0).mttdl_hours)
        )

    def test_declustering_factor(self):
        r = mttdl_declustered(13, 4, MTTF, 24.0)
        raid = mttdl_raid5(13, MTTF, 24.0)
        assert r.mttdl_hours == pytest.approx(
            raid.mttdl_hours * (13 - 1) / (4 - 1)
        )


class TestDistributedSparing:
    def test_sparing_is_a_sure_win(self):
        # §5: rebuild into spare space (~1 hour) vs waiting a day for a
        # replacement drive.
        no_spare = mttdl_declustered(13, 4, MTTF, 24.0)
        spared = mttdl_distributed_sparing(13, 4, MTTF, 1.0)
        assert spared.mttdl_hours > 20 * no_spare.mttdl_hours

    def test_reporting(self):
        r = mttdl_distributed_sparing(13, 4, MTTF, 1.0)
        assert "PDDL" in r.as_row()
        assert r.mttdl_years == pytest.approx(r.mttdl_hours / (24 * 365.25))

    @given(
        st.integers(min_value=5, max_value=60),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_monotone_in_rebuild_time(self, n, rebuild_hours):
        k = 4
        if (n - 1) % 1:
            return
        fast = mttdl_distributed_sparing(n, k, MTTF, rebuild_hours)
        slow = mttdl_distributed_sparing(n, k, MTTF, rebuild_hours * 2)
        assert fast.mttdl_hours > slow.mttdl_hours


class TestRebuildConversion:
    def test_conversion(self):
        # 1000 ms per pattern, 3.6M patterns -> 1000 hours.
        assert rebuild_hours_from_simulation(1000.0, 3_600_000) == (
            pytest.approx(1000.0)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            rebuild_hours_from_simulation(0.0, 10)
        with pytest.raises(ConfigurationError):
            rebuild_hours_from_simulation(5.0, 0)
