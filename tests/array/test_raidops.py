"""Tests for pure RAID operation planning."""

import pytest

from repro.array.raidops import ArrayMode, UnitOp, plan_access
from repro.errors import ConfigurationError, MappingError
from repro.layouts import make_layout
from repro.layouts.address import Role


@pytest.fixture(scope="module")
def raid5():
    return make_layout("raid5", 13, 13)


@pytest.fixture(scope="module")
def pddl():
    return make_layout("pddl", 13, 4)


class TestFaultFreeReads:
    def test_one_op_per_unit(self, raid5):
        plan = plan_access(raid5, 0, 12, is_write=False)
        assert plan.operation_count() == 12
        assert len(plan.phases) == 1
        assert all(not op.is_write for op in plan.all_ops())

    def test_reads_touch_only_data_disks(self, pddl):
        plan = plan_access(pddl, 0, 6, is_write=False)
        for op in plan.all_ops():
            assert pddl.locate(op.disk, op.offset).role is Role.DATA


class TestFaultFreeWrites:
    def test_small_write(self, raid5):
        # 1 unit of 12: read old data + parity, write data + parity.
        plan = plan_access(raid5, 0, 1, is_write=True)
        assert len(plan.phases) == 2
        assert len(plan.phases[0]) == 2
        assert len(plan.phases[1]) == 2

    def test_half_stripe_is_small_write(self, raid5):
        # §4.2: RAID-5 48KB (6 of 12 units) implements small writes.
        plan = plan_access(raid5, 0, 6, is_write=True)
        assert len(plan.phases[0]) == 7   # 6 old data + parity
        assert len(plan.phases[1]) == 7   # 6 data + parity

    def test_large_write_above_half(self, raid5):
        plan = plan_access(raid5, 0, 9, is_write=True)
        assert len(plan.phases[0]) == 3   # the 3 untouched units
        assert len(plan.phases[1]) == 10  # 9 data + parity

    def test_full_stripe_write_has_no_reads(self, raid5):
        plan = plan_access(raid5, 0, 12, is_write=True)
        assert len(plan.phases) == 1
        assert len(plan.phases[0]) == 13  # 12 data + parity
        assert all(op.is_write for op in plan.all_ops())

    def test_full_stripe_write_pddl(self, pddl):
        plan = plan_access(pddl, 0, 3, is_write=True)
        assert len(plan.phases) == 1
        assert plan.operation_count() == 4

    def test_multi_stripe_write_mixes_modes(self, pddl):
        # 4 units starting at 1: stripe 0 gets 2 of 3 (large write),
        # stripe 1 gets 2 of 3 (large write).
        plan = plan_access(pddl, 1, 4, is_write=True)
        assert len(plan.phases) == 2
        # each stripe: 1 untouched read; writes: 2 data + parity each.
        assert len(plan.phases[0]) == 2
        assert len(plan.phases[1]) == 6


class TestDegradedReads:
    def test_lost_unit_fans_out(self, pddl):
        # Find a data unit on disk 0 and read it degraded.
        unit = next(
            u
            for u in range(pddl.data_units_per_period)
            if pddl.data_unit_address(u).disk == 0
        )
        plan = plan_access(
            pddl, unit, 1, is_write=False,
            mode=ArrayMode.DEGRADED, failed_disk=0,
        )
        assert plan.operation_count() == pddl.k - 1
        assert all(op.disk != 0 for op in plan.all_ops())

    def test_surviving_unit_reads_normally(self, pddl):
        unit = next(
            u
            for u in range(pddl.data_units_per_period)
            if pddl.data_unit_address(u).disk != 0
        )
        plan = plan_access(
            pddl, unit, 1, is_write=False,
            mode=ArrayMode.DEGRADED, failed_disk=0,
        )
        assert plan.operation_count() == 1

    def test_dedupes_overlapping_reconstruction_reads(self, pddl):
        # Reading a whole stripe degraded: survivors appear once each.
        stripe_units = pddl.stripe_units(0)
        failed = stripe_units.data[0].disk
        plan = plan_access(
            pddl, 0, 3, is_write=False,
            mode=ArrayMode.DEGRADED, failed_disk=failed,
        )
        ops = plan.all_ops()
        assert len(ops) == len(set(ops))
        assert plan.operation_count() == 3  # 2 surviving data + check


class TestDegradedWrites:
    def _stripe_with_failed_role(self, layout, failed, want_role):
        """First stripe whose relation to `failed` matches want_role."""
        for s in range(layout.stripes_per_period):
            units = layout.stripe_units(s)
            if want_role == "check":
                if units.check[0].disk == failed:
                    return s
            elif want_role == "data":
                if any(a.disk == failed for a in units.data):
                    return s
            elif want_role == "none":
                if all(a.disk != failed for a in units.all_units()):
                    return s
        raise AssertionError("no such stripe")

    def test_lost_parity_writes_data_only(self, pddl):
        s = self._stripe_with_failed_role(pddl, 0, "check")
        unit = pddl.data_units_of_stripe(s)[0]
        plan = plan_access(
            pddl, unit, 1, is_write=True,
            mode=ArrayMode.DEGRADED, failed_disk=0,
        )
        assert len(plan.phases) == 1
        assert plan.operation_count() == 1
        assert plan.phases[0][0].is_write

    def test_lost_written_data_forces_large_write(self, raid5):
        s = 0
        units = raid5.stripe_units(s)
        failed = units.data[2].disk
        # Write units 0..5 (includes position 2) -> forced large write.
        plan = plan_access(
            raid5, 0, 6, is_write=True,
            mode=ArrayMode.DEGRADED, failed_disk=failed,
        )
        reads, writes = plan.phases
        assert len(reads) == 6          # the 6 untouched units, all alive
        assert len(writes) == 6         # 5 surviving data + parity
        assert all(op.disk != failed for op in reads + writes)

    def test_lost_untouched_data_forces_small_write(self, raid5):
        units = raid5.stripe_units(0)
        failed = units.data[11].disk
        plan = plan_access(
            raid5, 0, 6, is_write=True,
            mode=ArrayMode.DEGRADED, failed_disk=failed,
        )
        reads, writes = plan.phases
        assert len(reads) == 7          # 6 old data + parity
        assert len(writes) == 7
        assert all(op.disk != failed for op in reads + writes)

    def test_degraded_large_writes_do_less_work(self, raid5):
        # §4.2: "the array actually does less work in many cases when
        # performing large writes, because the failed disk cannot be
        # written" — compare a 9-unit write hitting the failed disk.
        units = raid5.stripe_units(0)
        failed = units.data[0].disk
        clean = plan_access(raid5, 0, 9, is_write=True)
        degraded = plan_access(
            raid5, 0, 9, is_write=True,
            mode=ArrayMode.DEGRADED, failed_disk=failed,
        )
        assert degraded.operation_count() < clean.operation_count()


class TestPostReconstruction:
    def test_reads_redirect_to_spare(self, pddl):
        unit = next(
            u
            for u in range(pddl.data_units_per_period)
            if pddl.data_unit_address(u).disk == 0
        )
        plan = plan_access(
            pddl, unit, 1, is_write=False,
            mode=ArrayMode.POST_RECONSTRUCTION, failed_disk=0,
        )
        assert plan.operation_count() == 1
        op = plan.all_ops()[0]
        assert op.disk != 0
        assert pddl.locate(op.disk, op.offset).role is Role.SPARE

    def test_writes_redirect_to_spare(self, pddl):
        unit = next(
            u
            for u in range(pddl.data_units_per_period)
            if pddl.data_unit_address(u).disk == 0
        )
        plan = plan_access(
            pddl, unit, 1, is_write=True,
            mode=ArrayMode.POST_RECONSTRUCTION, failed_disk=0,
        )
        assert all(op.disk != 0 for op in plan.all_ops())

    def test_requires_sparing(self, raid5):
        with pytest.raises(MappingError):
            plan_access(
                raid5, 0, 1, is_write=False,
                mode=ArrayMode.POST_RECONSTRUCTION, failed_disk=0,
            )


class TestValidation:
    def test_bad_unit_count(self, raid5):
        with pytest.raises(ConfigurationError):
            plan_access(raid5, 0, 0, is_write=False)

    def test_negative_start(self, raid5):
        with pytest.raises(ConfigurationError):
            plan_access(raid5, -1, 1, is_write=False)

    def test_fault_free_rejects_failed_disk(self, raid5):
        with pytest.raises(ConfigurationError):
            plan_access(raid5, 0, 1, is_write=False, failed_disk=0)

    def test_degraded_requires_failed_disk(self, raid5):
        with pytest.raises(ConfigurationError):
            plan_access(raid5, 0, 1, is_write=False, mode=ArrayMode.DEGRADED)
