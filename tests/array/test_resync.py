"""Unit tests for post-crash resync: classification and replay."""

import pytest

from repro.array.controller import ArrayController, LogicalAccess
from repro.array.journal import StripeJournal
from repro.array.resync import Resynchronizer, classify_stripe
from repro.errors import SimulationError
from repro.faults.crash import CrashInjector
from repro.faults.oracle import IntegrityOracle
from repro.layouts import make_layout
from repro.sim.engine import SimulationEngine


def make_array(layout_name="raid5", disks=5, width=5, journal=True):
    engine = SimulationEngine()
    layout = make_layout(layout_name, disks, width)
    controller = ArrayController(engine, layout)
    oracle = controller.attach_oracle(IntegrityOracle(layout))
    log = (
        controller.attach_journal(StripeJournal(latency_ms=0.05))
        if journal
        else None
    )
    return engine, layout, controller, oracle, log


class TestClassifyStripe:
    def setup_method(self):
        self.layout = make_layout("raid5", 5, 5)

    def _check_disk(self, stripe):
        (check,) = self.layout.stripe_units(stripe).check
        return check

    def test_no_failed_disk_is_always_recompute(self):
        assert classify_stripe(self.layout, 0, None) == "recompute"

    def test_failed_data_member_is_data_lost(self):
        addr = self.layout.stripe_units(0).data[0]
        verdict = classify_stripe(self.layout, 0, addr.disk)
        assert verdict == "data_lost"

    def test_failed_check_member_is_parity_lost(self):
        check = self._check_disk(0)
        assert classify_stripe(self.layout, 0, check.disk) == "parity_lost"

    def test_uninvolved_disk_is_recompute(self):
        involved = {a.disk for a in self.layout.stripe_units(0).all_units()}
        # RAID 5 at width 5 on 5 disks involves every disk; use a
        # declustered layout to find an uninvolved one.
        layout = make_layout("parity-declustering", 7, 4)
        involved = {a.disk for a in layout.stripe_units(0).all_units()}
        outsider = next(d for d in range(layout.n) if d not in involved)
        assert classify_stripe(layout, 0, outsider) == "recompute"

    def test_rebuild_frontier_heals_the_classification(self):
        addr = self.layout.stripe_units(0).data[0]
        behind = lambda offset: True  # noqa: E731 - fully swept
        ahead = lambda offset: False  # noqa: E731 - not reached
        assert (
            classify_stripe(self.layout, 0, addr.disk, rebuilt=behind)
            == "recompute"
        )
        assert (
            classify_stripe(self.layout, 0, addr.disk, rebuilt=ahead)
            == "data_lost"
        )


def crash_one_write(engine, controller, first_unit=0, unit_count=1):
    """Submit one small (read-modify-write, two-phase) write and crash
    at its first phase boundary — between the pre-reads and the data and
    parity writes, the canonical write-hole instant."""
    crash = CrashInjector(controller, at_boundary=0)
    crash.arm()
    controller.submit(
        LogicalAccess(0, first_unit, unit_count, True), lambda a, ms: None
    )
    engine.run()
    assert crash.fired
    return crash


class TestResynchronizer:
    def test_journal_replay_sweeps_exactly_the_dirty_set(self):
        engine, layout, controller, oracle, log = make_array()
        crash = crash_one_write(engine, controller)
        dirty = log.dirty_stripes()
        assert dirty == crash.torn_stripes  # NVRAM named the torn set

        resync = Resynchronizer(
            controller, journal=log, suspect=set(crash.torn_stripes)
        )
        assert resync.sweep == dirty
        resync.start()
        engine.run()
        assert resync.complete
        assert resync.recomputed == len(dirty)
        assert resync.duration_ms > 0
        assert log.dirty_stripes() == []  # replay emptied the NVRAM
        verification = oracle.verify()
        assert verification["corruption_events"] == 0
        assert verification["suspect_stripes"] == 0

    def test_full_sweep_covers_the_region_and_costs_more(self):
        engine, layout, controller, oracle, log = make_array(journal=False)
        crash = crash_one_write(engine, controller)

        rows = 2 * layout.period
        resync = Resynchronizer(
            controller, rows=rows, suspect=set(crash.torn_stripes)
        )
        assert resync.stripes_total == 2 * layout.stripes_per_period
        assert set(crash.torn_stripes) <= set(resync.sweep)
        resync.start()
        engine.run()
        assert resync.complete
        assert resync.recomputed == resync.stripes_total
        assert oracle.verify()["corruption_events"] == 0

    def test_torn_stripe_on_failed_data_member_is_data_loss(self):
        engine, layout, controller, oracle, log = make_array()
        crash = crash_one_write(engine, controller)
        torn = crash.torn_stripes[0]
        victim = layout.stripe_units(torn).data[0].disk
        controller.fail_disk(victim)

        resync = Resynchronizer(
            controller, journal=log, suspect=set(crash.torn_stripes)
        )
        resync.start()
        assert resync.aborted
        assert torn in resync.data_lost_stripes
        assert "write hole" in controller.data_loss_reason

    def test_clean_stripes_on_failed_disk_stay_safe(self):
        # A degraded full sweep meets many stripes with a data member on
        # the failed disk; only genuinely-torn ones are data loss.
        engine, layout, controller, oracle, log = make_array(journal=False)
        crash = crash_one_write(engine, controller)
        torn = set(crash.torn_stripes)
        check_disk = layout.stripe_units(next(iter(torn))).check[0].disk
        controller.fail_disk(check_disk)

        resync = Resynchronizer(
            controller, rows=2 * layout.period, suspect=torn
        )
        resync.start()
        engine.run()
        assert not resync.aborted and resync.complete
        # Untorn stripes with a lost data member were skipped, not
        # recomputed from a half-written mirror and not declared lost.
        assert resync.consistent_skipped > 0
        assert resync.data_lost_stripes == []

    def test_parameter_validation(self):
        engine, layout, controller, oracle, log = make_array()
        with pytest.raises(SimulationError):
            Resynchronizer(controller, parallel_stripes=0)
        with pytest.raises(SimulationError):
            Resynchronizer(controller, throttle_ms=-1.0)
        resync = Resynchronizer(controller, journal=log)
        resync.start()
        with pytest.raises(SimulationError):
            resync.start()
