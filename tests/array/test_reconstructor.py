"""Tests for background reconstruction."""

import pytest

from repro.array.controller import ArrayController, LogicalAccess
from repro.array.raidops import ArrayMode
from repro.array.reconstructor import Reconstructor
from repro.errors import SimulationError
from repro.layouts import make_layout
from repro.sim.engine import SimulationEngine


def build_failed(rows=13):
    engine = SimulationEngine()
    controller = ArrayController(engine, make_layout("pddl", 13, 4))
    controller.fail_disk(0)
    return engine, controller


class TestRebuild:
    def test_completes_and_flips_mode(self):
        engine, controller = build_failed()
        finished = {}
        recon = Reconstructor(
            controller,
            rows=13,
            on_finished=lambda ms: finished.update(ms=ms),
        )
        recon.start()
        engine.run()
        assert recon.finished_ms is not None
        assert finished["ms"] == recon.duration_ms
        assert controller.mode is ArrayMode.POST_RECONSTRUCTION
        # One period: 12 lost stripe units (one row holds the spare).
        assert recon.steps_completed == 12

    def test_never_touches_failed_disk(self):
        engine, controller = build_failed()
        Reconstructor(controller, rows=13).start()
        engine.run()
        assert controller.servers[0].stats.operations == 0

    def test_parallel_steps_faster(self):
        def duration(parallel):
            engine, controller = build_failed()
            recon = Reconstructor(controller, parallel_steps=parallel, rows=26)
            recon.start()
            engine.run()
            return recon.duration_ms

        assert duration(4) < duration(1)

    def test_concurrent_with_client_load(self):
        engine, controller = build_failed()
        responses = []

        def on_complete(access, ms):
            responses.append(ms)

        controller.submit(LogicalAccess(1, 0, 6, False), on_complete)
        recon = Reconstructor(controller, rows=13)
        recon.start()
        engine.run()
        assert responses
        assert recon.finished_ms is not None

    def test_duration_before_finish_raises(self):
        engine, controller = build_failed()
        recon = Reconstructor(controller, rows=13)
        with pytest.raises(SimulationError):
            _ = recon.duration_ms

    def test_double_start_rejected(self):
        engine, controller = build_failed()
        recon = Reconstructor(controller, rows=13)
        recon.start()
        with pytest.raises(SimulationError):
            recon.start()

    def test_requires_failed_disk(self):
        engine = SimulationEngine()
        controller = ArrayController(engine, make_layout("pddl", 13, 4))
        with pytest.raises(SimulationError):
            Reconstructor(controller)

    def test_requires_sparing(self):
        engine = SimulationEngine()
        controller = ArrayController(engine, make_layout("raid5", 13, 13))
        controller.fail_disk(0)
        with pytest.raises(SimulationError):
            Reconstructor(controller)

    def test_bad_parallelism(self):
        engine, controller = build_failed()
        with pytest.raises(SimulationError):
            Reconstructor(controller, parallel_steps=0)

    def test_replacement_rebuild_for_layout_without_sparing(self):
        engine = SimulationEngine()
        controller = ArrayController(
            engine, make_layout("parity-declustering", 13, 4)
        )
        controller.fail_disk(0)
        recon = Reconstructor(
            controller, rows=13, allow_replacement=True
        )
        recon.start()
        engine.run()
        # The rebuild wrote the failed disk's units back to the
        # replacement spindle and the array is whole again.
        assert recon.finished_ms is not None
        assert recon.steps_completed == 13
        assert controller.mode is ArrayMode.FAULT_FREE
        assert controller.failed_disk is None
        assert controller.servers[0].stats.operations == 13

    def test_read_tally_balanced_over_survivors(self):
        engine, controller = build_failed()
        Reconstructor(controller, rows=13).start()
        engine.run()
        reads = [
            s.stats.operations
            for i, s in enumerate(controller.servers)
            if i != 0
        ]
        # Satisfactory PDDL: every survivor does k-1 = 3 reads plus its
        # share of the 12 spare writes.
        assert max(reads) - min(reads) <= 1


class TestProgress:
    def test_progress_and_fraction_track_the_sweep(self):
        engine, controller = build_failed()
        fractions = []
        recon = Reconstructor(
            controller,
            rows=13,
            on_step=lambda r: fractions.append(
                (r.progress, r.fraction_complete)
            ),
        )
        assert recon.progress == 0
        assert recon.fraction_complete == 0.0
        assert recon.total_steps == 12
        recon.start()
        engine.run()
        assert recon.progress == 12
        assert recon.fraction_complete == 1.0
        assert fractions == [(i + 1, (i + 1) / 12) for i in range(12)]

    def test_rebuild_frontier_grows_monotonically(self):
        engine, controller = build_failed()
        offsets_when_stepped = []
        recon = Reconstructor(
            controller,
            rows=13,
            on_step=lambda r: offsets_when_stepped.append(
                sum(r.is_rebuilt(o) for o in range(13))
            ),
        )
        recon.start()
        engine.run()
        assert offsets_when_stepped == sorted(offsets_when_stepped)


class TestThrottle:
    def test_throttle_slows_the_rebuild(self):
        def duration(throttle_ms):
            engine, controller = build_failed()
            recon = Reconstructor(
                controller, rows=26, throttle_ms=throttle_ms
            )
            recon.start()
            engine.run()
            assert recon.steps_completed == recon.total_steps
            return recon.duration_ms

        unthrottled = duration(0.0)
        throttled = duration(20.0)
        # 24 steps re-issued through one slot: at least 23 idle gaps.
        assert throttled >= unthrottled + 20.0 * 10

    def test_negative_throttle_rejected(self):
        engine, controller = build_failed()
        with pytest.raises(SimulationError):
            Reconstructor(controller, throttle_ms=-1.0)
