"""Slow-disk detection and hedged degraded-reads (tail tolerance)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.array.controller import (
    ArrayController,
    HedgePolicy,
    LogicalAccess,
    SlowDiskDetector,
)
from repro.errors import ConfigurationError
from repro.faults.failslow import FailSlowModel
from repro.layouts import make_layout
from repro.sim.engine import SimulationEngine


class TestHedgePolicyValidation:
    def test_defaults_are_valid(self):
        HedgePolicy()

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            HedgePolicy(deferral_ms=0.0)
        with pytest.raises(ConfigurationError):
            HedgePolicy(ewma_alpha=0.0)
        with pytest.raises(ConfigurationError):
            HedgePolicy(ewma_alpha=1.5)
        with pytest.raises(ConfigurationError):
            HedgePolicy(quarantine_factor=1.0)
        with pytest.raises(ConfigurationError):
            HedgePolicy(unquarantine_factor=5.0, quarantine_factor=3.0)
        with pytest.raises(ConfigurationError):
            HedgePolicy(min_samples=0)
        with pytest.raises(ConfigurationError):
            HedgePolicy(hysteresis=0)


def feed(detector, latencies_by_disk, rounds):
    """Feed one observation per disk per round, round-robin."""
    for _ in range(rounds):
        for disk, latency in enumerate(latencies_by_disk):
            detector.observe(disk, latency)


class TestSlowDiskDetector:
    def test_homogeneous_latencies_never_quarantine(self):
        detector = SlowDiskDetector(5, HedgePolicy())
        feed(detector, [20.0] * 5, rounds=100)
        assert detector.quarantines == 0
        assert detector.report()["quarantined"] == []

    def test_slow_outlier_is_quarantined(self):
        detector = SlowDiskDetector(5, HedgePolicy())
        feed(detector, [20.0, 20.0, 100.0, 20.0, 20.0], rounds=40)
        assert detector.is_quarantined(2)
        assert detector.quarantines == 1
        assert detector.report()["quarantined"] == [2]

    def test_no_verdicts_before_min_samples(self):
        policy = HedgePolicy(min_samples=50)
        detector = SlowDiskDetector(5, policy)
        feed(detector, [20.0, 20.0, 500.0, 20.0, 20.0], rounds=10)
        assert detector.quarantines == 0

    def test_hysteresis_absorbs_a_transient_spike(self):
        def spike_then_recover(hysteresis):
            policy = HedgePolicy(min_samples=1, hysteresis=hysteresis)
            detector = SlowDiskDetector(3, policy)
            # Warm everyone up to a 20ms baseline.
            feed(detector, [20.0] * 3, rounds=20)
            # One outlier sample, then normal service: the EWMA decays
            # back under the threshold within a few observations.
            detector.observe(0, 500.0)
            for _ in range(10):
                feed(detector, [20.0] * 3, rounds=1)
            return detector.is_quarantined(0)

        # A trigger-happy detector (streak of 1) quarantines on the
        # spike; the hysteresis streak rides out the EWMA decay.
        assert spike_then_recover(hysteresis=1)
        assert not spike_then_recover(hysteresis=8)

    def test_unquarantine_after_heal(self):
        detector = SlowDiskDetector(5, HedgePolicy())
        feed(detector, [20.0, 20.0, 100.0, 20.0, 20.0], rounds=40)
        assert detector.is_quarantined(2)
        feed(detector, [20.0] * 5, rounds=60)
        assert not detector.is_quarantined(2)
        assert detector.unquarantines == 1

    @given(
        multiplier=st.floats(min_value=4.0, max_value=20.0),
        base=st.floats(min_value=5.0, max_value=50.0),
        slow_disk=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_hysteresis_converges_after_failslow_heals(
        self, multiplier, base, slow_disk
    ):
        """Quarantine -> unquarantine always converges once the gray
        failure clears, regardless of how slow the disk was."""
        detector = SlowDiskDetector(5, HedgePolicy())
        latencies = [base] * 5
        latencies[slow_disk] = base * multiplier
        feed(detector, latencies, rounds=60)
        assert detector.is_quarantined(slow_disk)
        feed(detector, [base] * 5, rounds=80)
        assert not detector.is_quarantined(slow_disk)
        assert detector.quarantines == detector.unquarantines == 1
        # And it stays out: a healthy disk is never re-quarantined.
        feed(detector, [base] * 5, rounds=40)
        assert detector.quarantines == 1


def run_bursts(
    burst_sizes,
    seed,
    layout="pddl",
    k=4,
    slow_disk=None,
    multiplier=5.0,
    fail=None,
    gap_ms=200.0,
):
    """Drive bursty single-unit reads through a hedging controller."""
    engine = SimulationEngine()
    controller = ArrayController(engine, make_layout(layout, 13, k))
    controller.set_hedge_policy(HedgePolicy())
    if fail is not None:
        controller.fail_disk(fail)
    if slow_disk is not None:
        controller.servers[slow_disk].drive.fail_slow = FailSlowModel(
            multiplier, onset_ms=0.0
        )
    rng = random.Random(seed)
    responses = []
    access_id = 0
    start_ms = 0.0
    for size in burst_sizes:
        for _ in range(size):
            access_id += 1
            unit = rng.randrange(controller.addressable_data_units)
            access = LogicalAccess(access_id, unit, 1, is_write=False)
            engine.schedule_at(
                start_ms,
                lambda a=access: controller.submit(
                    a, lambda _, ms: responses.append(ms)
                ),
            )
        start_ms += gap_ms
    engine.run()
    return controller, responses


class TestHedgedReads:
    def test_hedges_resolve_and_accounting_balances(self):
        controller, responses = run_bursts([20] * 8, seed=3, slow_disk=4)
        stats = controller.io_stats
        assert stats.hedges_launched > 0
        assert stats.hedges_won > 0
        # Every launched hedge resolves exactly one way once drained.
        assert (
            stats.hedges_launched == stats.hedges_won + stats.hedges_lost
        )
        assert controller._hedges == {}
        assert len(responses) == 160

    def test_slow_disk_gets_quarantined(self):
        controller, _ = run_bursts([20] * 8, seed=3, slow_disk=4)
        assert controller.slow_disk_detector.report()["quarantined"] == [4]

    def test_hedging_cuts_tail_under_failslow(self):
        _, defended = run_bursts([16] * 8, seed=11, slow_disk=2)
        engine = SimulationEngine()
        undefended_controller = ArrayController(
            engine, make_layout("pddl", 13, 4)
        )
        undefended_controller.servers[2].drive.fail_slow = FailSlowModel(
            5.0, onset_ms=0.0
        )
        rng = random.Random(11)
        undefended = []
        access_id = 0
        start_ms = 0.0
        for _ in range(8):
            for _ in range(16):
                access_id += 1
                unit = rng.randrange(
                    undefended_controller.addressable_data_units
                )
                access = LogicalAccess(access_id, unit, 1, is_write=False)
                engine.schedule_at(
                    start_ms,
                    lambda a=access: undefended_controller.submit(
                        a, lambda _, ms: undefended.append(ms)
                    ),
                )
            start_ms += 200.0
        engine.run()
        assert max(defended) < max(undefended)

    def test_raid5_degraded_hedges_abort(self):
        # Mid-failure RAID5: every stripe contains the failed disk, so
        # no stripe has redundancy left to hedge from.
        controller, responses = run_bursts(
            [10] * 4, seed=5, layout="raid5", k=13, slow_disk=4, fail=0
        )
        stats = controller.io_stats
        assert stats.hedges_launched == 0
        assert stats.hedge_aborts > 0
        assert len(responses) == 40

    def test_pddl_degraded_hedges_still_fire(self):
        # Declustering (k < n) leaves most stripes fully redundant even
        # with one disk down: hedging keeps working mid-failure.
        controller, _ = run_bursts(
            [10] * 4, seed=5, layout="pddl", k=4, slow_disk=4, fail=0
        )
        assert controller.io_stats.hedges_launched > 0

    def test_instrumentation_keys_gated_on_policy(self):
        engine = SimulationEngine()
        controller = ArrayController(engine, make_layout("pddl", 13, 4))
        record = controller.instrumentation_record()
        assert "io_recovery" not in record
        assert "slow_disks" not in record
        controller.set_hedge_policy(HedgePolicy())
        record = controller.instrumentation_record()
        assert "hedges_launched" in record["io_recovery"]
        assert record["slow_disks"]["quarantines"] == 0
        controller.set_hedge_policy(None)
        assert "io_recovery" not in controller.instrumentation_record()

    def test_crash_clears_armed_hedges(self):
        engine = SimulationEngine()
        controller = ArrayController(engine, make_layout("pddl", 13, 4))
        controller.set_hedge_policy(HedgePolicy())
        controller.submit(
            LogicalAccess(1, 0, 4, is_write=False), lambda a, ms: None
        )
        assert controller._hedges
        controller.crash()
        engine.clear_pending()
        assert controller._hedges == {}
        engine.run()  # nothing pending explodes

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        bursts=st.lists(
            st.integers(min_value=2, max_value=24),
            min_size=3,
            max_size=8,
        ),
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_healthy_array_never_quarantines_under_bursty_load(
        self, seed, bursts
    ):
        """A homogeneous healthy array must produce zero quarantines no
        matter how bursty the (uniformly addressed) load is: queueing
        inflates every disk's EWMA together, never one disk 3x past the
        median with hysteresis."""
        controller, _ = run_bursts(bursts, seed=seed)
        detector = controller.slow_disk_detector
        assert detector.quarantines == 0
        assert detector.report()["quarantined"] == []
