"""AIMD rebuild throttling from the foreground SLO signal."""

import pytest

from repro.array.controller import ArrayController, LogicalAccess
from repro.array.reconstructor import AdaptiveThrottle, Reconstructor
from repro.errors import SimulationError
from repro.layouts import make_layout
from repro.sim.engine import SimulationEngine
from repro.traffic.sla import SlaTracker, SloPolicy


def tracker(p99_ms=50.0, window_ms=100.0):
    return SlaTracker(
        SloPolicy(p99_ms=p99_ms, p999_ms=4 * p99_ms), window_ms=window_ms
    )


class TestRecentOverFraction:
    def test_idle_windows_return_none(self):
        t = tracker()
        assert t.recent_over_fraction(1000.0) is None

    def test_fraction_over_the_ceiling(self):
        t = tracker(p99_ms=50.0, window_ms=100.0)
        # Window 3 (300..400ms): three fast, one slow completion.
        for response in (10.0, 20.0, 30.0, 80.0):
            t.record(350.0, response)
        assert t.recent_over_fraction(400.0) == pytest.approx(0.25)
        # The window still being open does not count.
        assert t.recent_over_fraction(399.0) is None

    def test_multi_window_lookback(self):
        t = tracker(p99_ms=50.0, window_ms=100.0)
        t.record(150.0, 80.0)   # window 1: 1/1 over
        t.record(250.0, 10.0)   # window 2: 0/1 over
        assert t.recent_over_fraction(300.0, windows=2) == pytest.approx(
            0.5
        )
        assert t.recent_over_fraction(300.0, windows=1) == 0.0

    def test_rejects_zero_windows(self):
        with pytest.raises(Exception):
            tracker().recent_over_fraction(100.0, windows=0)


class TestAdaptiveThrottle:
    def test_validation(self):
        t = tracker()
        with pytest.raises(SimulationError):
            AdaptiveThrottle(t, initial_ms=-1.0)
        with pytest.raises(SimulationError):
            AdaptiveThrottle(t, initial_ms=100.0, max_ms=32.0)
        with pytest.raises(SimulationError):
            AdaptiveThrottle(t, backoff_factor=1.0)
        with pytest.raises(SimulationError):
            AdaptiveThrottle(t, recover_step_ms=0.0)
        with pytest.raises(SimulationError):
            AdaptiveThrottle(t, violation_fraction=1.0)

    def test_backs_off_multiplicatively_under_violation(self):
        t = tracker(p99_ms=50.0, window_ms=100.0)
        throttle = AdaptiveThrottle(t, initial_ms=2.0, max_ms=32.0)
        # Every window breaks the p99 promise.
        for window in range(1, 6):
            t.record(window * 100.0 - 50.0, 500.0)
            throttle.current_ms(window * 100.0 + 1.0)
        # 2 -> 4 -> 8 -> 16 -> 32 (clamped).
        assert throttle.throttle_ms == 32.0
        assert throttle.backoffs == 5
        assert throttle.peak_ms == 32.0

    def test_recovers_additively_when_healthy(self):
        t = tracker(p99_ms=50.0, window_ms=100.0)
        throttle = AdaptiveThrottle(
            t, initial_ms=2.0, recover_step_ms=0.5, min_ms=0.0
        )
        for window in range(1, 4):
            t.record(window * 100.0 - 50.0, 1.0)  # fast completions
            throttle.current_ms(window * 100.0 + 1.0)
        assert throttle.throttle_ms == pytest.approx(0.5)
        assert throttle.sprints == 3

    def test_idle_foreground_sprints_to_the_floor(self):
        t = tracker()
        throttle = AdaptiveThrottle(
            t, initial_ms=2.0, recover_step_ms=1.0, min_ms=0.0
        )
        for window in range(1, 6):
            throttle.current_ms(window * 100.0 + 1.0)
        assert throttle.throttle_ms == 0.0

    def test_growth_floor_escapes_zero(self):
        t = tracker(p99_ms=50.0, window_ms=100.0)
        throttle = AdaptiveThrottle(
            t, initial_ms=0.0, growth_floor_ms=0.5
        )
        t.record(50.0, 500.0)
        throttle.current_ms(101.0)
        assert throttle.throttle_ms == 0.5
        t.record(150.0, 500.0)
        throttle.current_ms(201.0)
        assert throttle.throttle_ms == 1.0

    def test_one_decision_per_window(self):
        t = tracker(p99_ms=50.0, window_ms=100.0)
        throttle = AdaptiveThrottle(t, initial_ms=2.0)
        t.record(50.0, 500.0)
        first = throttle.current_ms(110.0)
        # Repeated asks inside the same window must not re-decide.
        assert throttle.current_ms(150.0) == first
        assert throttle.current_ms(199.0) == first
        assert throttle.backoffs == 1

    def test_report_shape(self):
        throttle = AdaptiveThrottle(tracker(), initial_ms=2.0)
        assert throttle.report() == {
            "throttle_ms": 2.0,
            "peak_ms": 2.0,
            "backoffs": 0,
            "sprints": 0,
        }


def build_failed():
    engine = SimulationEngine()
    controller = ArrayController(engine, make_layout("pddl", 13, 4))
    controller.fail_disk(0)
    return engine, controller


class TestReconstructorIntegration:
    def test_none_is_byte_identical_to_static(self):
        def run(adaptive):
            engine, controller = build_failed()
            recon = Reconstructor(
                controller,
                rows=26,
                throttle_ms=5.0,
                adaptive_throttle=adaptive,
            )
            recon.start()
            engine.run()
            return recon.duration_ms, controller.instrumentation_record()

        assert run(None) == run(None)

    def test_idle_adaptive_beats_static_throttle(self):
        # No foreground load at all: AIMD sprints to zero gap while the
        # static throttle keeps paying 20ms per step forever.
        def run(adaptive, throttle_ms):
            engine, controller = build_failed()
            recon = Reconstructor(
                controller,
                rows=26,
                throttle_ms=throttle_ms,
                adaptive_throttle=adaptive,
            )
            recon.start()
            engine.run()
            assert recon.steps_completed == recon.total_steps
            return recon.duration_ms

        static = run(None, 20.0)
        t = tracker(window_ms=50.0)
        adaptive = run(
            AdaptiveThrottle(
                t, initial_ms=20.0, max_ms=64.0, recover_step_ms=5.0
            ),
            20.0,
        )
        assert adaptive < static

    def test_violating_foreground_slows_the_sweep(self):
        # Feed the tracker a permanently violating signal: the sweep
        # must take longer than with a healthy signal.
        def run(response_ms):
            engine, controller = build_failed()
            t = tracker(p99_ms=50.0, window_ms=50.0)
            adaptive = AdaptiveThrottle(
                t, initial_ms=1.0, max_ms=64.0, recover_step_ms=0.25
            )
            # A metronome keeps the signal fresh in every window.
            def tick():
                t.record(engine.now, response_ms)
                if not engine_done["finished"]:
                    engine.schedule(25.0, tick)

            engine_done = {"finished": False}
            recon = Reconstructor(
                controller, rows=26, adaptive_throttle=adaptive
            )
            recon.on_finished = lambda ms: engine_done.update(
                finished=True
            )
            engine.schedule(0.0, tick)
            recon.start()
            engine.run()
            return recon.duration_ms, adaptive

        slow_duration, slow_adaptive = run(response_ms=500.0)
        fast_duration, fast_adaptive = run(response_ms=1.0)
        assert slow_adaptive.backoffs > 0
        assert fast_adaptive.backoffs == 0
        assert slow_duration > fast_duration
