"""Integration tests for the array controller on the event engine."""

import pytest

from repro.array.controller import ArrayController, LogicalAccess
from repro.array.raidops import ArrayMode
from repro.errors import ConfigurationError, SimulationError
from repro.layouts import make_layout
from repro.sim.engine import SimulationEngine


def build(layout_name="pddl", n=13, k=4, **kwargs):
    engine = SimulationEngine()
    controller = ArrayController(engine, make_layout(layout_name, n, k), **kwargs)
    return engine, controller


def run_one(engine, controller, access):
    done = {}

    def on_complete(acc, response):
        done["response"] = response

    controller.submit(access, on_complete)
    engine.run()
    assert "response" in done
    return done["response"]


class TestBasicOperation:
    def test_single_read_completes(self):
        engine, controller = build()
        response = run_one(
            engine, controller, LogicalAccess(1, 0, 12, is_write=False)
        )
        assert 0 < response < 200
        assert controller.completed_accesses == 1

    def test_single_write_takes_two_phases(self):
        engine, controller = build()
        read_resp = run_one(
            engine, controller, LogicalAccess(1, 0, 1, is_write=False)
        )
        engine2, controller2 = build()
        write_resp = run_one(
            engine2, controller2, LogicalAccess(1, 0, 1, is_write=True)
        )
        # A small write (pre-read then write) must take longer than a read.
        assert write_resp > read_resp

    def test_concurrent_accesses_interleave(self):
        engine, controller = build()
        responses = []
        for i in range(4):
            controller.submit(
                LogicalAccess(i, i * 100, 6, is_write=False),
                lambda acc, ms: responses.append(ms),
            )
        engine.run()
        assert len(responses) == 4

    def test_out_of_range_access_rejected(self):
        engine, controller = build()
        too_far = controller.addressable_data_units
        with pytest.raises(ConfigurationError):
            controller.submit(
                LogicalAccess(1, too_far, 1, False), lambda a, m: None
            )

    def test_duplicate_access_id_rejected(self):
        engine, controller = build()
        controller.submit(LogicalAccess(1, 0, 1, False), lambda a, m: None)
        with pytest.raises(SimulationError):
            controller.submit(LogicalAccess(1, 8, 1, False), lambda a, m: None)

    def test_stats_accumulate(self):
        engine, controller = build(coalesce=False)
        run_one(engine, controller, LogicalAccess(1, 0, 12, False))
        assert controller.total_stats().operations == 12

    def test_coalescing_reduces_operations(self):
        engine, controller = build(coalesce=True)
        run_one(engine, controller, LogicalAccess(1, 0, 12, False))
        merged = controller.total_stats().operations
        # 12 PDDL units span >1 row, so some disk holds adjacent offsets.
        assert merged < 12

    def test_coalesced_request_covers_same_sectors(self):
        # The same access must transfer the same total sectors either way.
        def total_sectors(coalesce):
            engine, controller = build(coalesce=coalesce)
            counted = []
            original_factories = []
            for server in controller.servers:
                orig = server.drive.service

                def wrapped(request, now_ms, orig=orig):
                    counted.append(request.sectors)
                    return orig(request, now_ms)

                server.drive.service = wrapped
            run_one(engine, controller, LogicalAccess(1, 0, 12, False))
            return sum(counted)

        assert total_sectors(True) == total_sectors(False)


class TestFailureModes:
    def test_fail_disk_switches_mode(self):
        engine, controller = build()
        controller.fail_disk(3)
        assert controller.mode is ArrayMode.DEGRADED
        assert controller.servers[3].failed

    def test_degraded_read_avoids_failed_disk(self):
        engine, controller = build()
        controller.fail_disk(0)
        run_one(engine, controller, LogicalAccess(1, 0, 36, False))
        assert controller.servers[0].stats.operations == 0

    def test_post_reconstruction_mode(self):
        engine, controller = build()
        controller.fail_disk(0)
        controller.finish_reconstruction()
        assert controller.mode is ArrayMode.POST_RECONSTRUCTION
        run_one(engine, controller, LogicalAccess(1, 0, 12, False))
        assert controller.servers[0].stats.operations == 0

    def test_finish_without_failure_rejected(self):
        engine, controller = build()
        with pytest.raises(SimulationError):
            controller.finish_reconstruction()

    def test_invalid_disk(self):
        engine, controller = build()
        with pytest.raises(ConfigurationError):
            controller.fail_disk(13)

    def test_direct_submit_to_failed_server_rejected(self):
        from repro.disk.drive import DiskRequest

        engine, controller = build()
        controller.fail_disk(2)
        with pytest.raises(SimulationError):
            controller.servers[2].submit(DiskRequest(0, 16, False, 1))


class TestSchedulerEffect:
    def test_sstf_beats_fifo_under_load(self):
        """SSTF must not be slower than FIFO for a seek-heavy burst."""
        def total_time(scheduler):
            engine, controller = build(scheduler_name=scheduler)
            done = []
            for i in range(24):
                controller.submit(
                    LogicalAccess(i, (i * 7919) % 100_000, 1, False),
                    lambda a, m: done.append(m),
                )
            engine.run()
            return engine.now

        assert total_time("sstf") <= total_time("fifo") * 1.05


class TestConfigErrors:
    def test_bad_stripe_unit(self):
        engine = SimulationEngine()
        with pytest.raises(ConfigurationError):
            ArrayController(
                engine, make_layout("pddl", 13, 4), stripe_unit_kb=0
            )


class TestRawSubmission:
    def test_raw_callback_fires(self):
        engine, controller = build()
        done = []
        controller.submit_raw(0, 0, False, 999, lambda: done.append(1))
        engine.run()
        assert done == [1]
