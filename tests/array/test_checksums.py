"""End-to-end checksum/write-verify defenses against silent corruption.

The corruption model marks cells whose platter content disagrees with
the controller's checksum+write-version metadata; these tests drive
client I/O through the controller and assert the defense contract:
with checksums armed no corrupt cell is ever delivered as good data
(it is demoted to a media error and repaired from redundancy), and
with checksums off every consumption is counted as a silent event.
"""

import pytest

from repro.array.controller import ArrayController, LogicalAccess
from repro.errors import ConfigurationError
from repro.faults.corruption import CorruptionModel
from repro.faults.oracle import IntegrityOracle
from repro.layouts import make_layout
from repro.sim.engine import SimulationEngine

LAYOUTS = ["datum", "parity-declustering", "raid5", "pddl", "prime"]

ROWS = 100


def build(layout_name="pddl", n=13, k=4, **kwargs):
    engine = SimulationEngine()
    controller = ArrayController(
        engine, make_layout(layout_name, n, k), **kwargs
    )
    model = CorruptionModel(n, ROWS, seed=f"test/{layout_name}")
    controller.attach_corruption(model)
    return engine, controller, model


def run_access(engine, controller, access):
    done = {}
    controller.submit(access, lambda acc, ms: done.setdefault("ms", ms))
    engine.run()
    assert "ms" in done
    return done["ms"]


def corrupt_one_write(engine, controller, model, access_id, first, count):
    """Issue one write with every disk in a lost-write burst, so each
    covered cell (data and check alike) is marked corrupt."""
    for disk in range(controller.layout.n):
        model.begin_burst(disk, 1.0, 0.0)
    run_access(
        engine, controller, LogicalAccess(access_id, first, count, True)
    )
    for disk in range(controller.layout.n):
        model.end_burst(disk)


class TestChecksumRoundTrip:
    @pytest.mark.parametrize("layout_name", LAYOUTS)
    def test_detects_and_repairs_on_every_layout(self, layout_name):
        """Write under total loss, then read back: the checksum path
        must catch every stale cell, repair it from the stripe, and
        deliver the read with zero silent consumptions."""
        engine, controller, model = build(layout_name)
        controller.enable_checksums()
        corrupt_one_write(engine, controller, model, 1, 0, 4)
        assert model.remaining > 0
        run_access(engine, controller, LogicalAccess(2, 0, 4, False))
        stats = controller.checksum_stats
        assert stats.mismatches > 0
        assert stats.demotions > 0
        # Escalation rebuilt the demoted sectors from the stripe and
        # rewrote them; the clean rewrites clear the corruption map.
        assert controller.io_stats.repaired_sectors > 0
        assert model.report()["silent_total"] == 0
        # The repaired cells read clean now.
        stats_before = stats.mismatches
        run_access(engine, controller, LogicalAccess(3, 0, 4, False))
        assert stats.mismatches == stats_before
        assert model.report()["silent_total"] == 0

    def test_validations_counted_per_client_read(self):
        engine, controller, model = build()
        controller.enable_checksums()
        run_access(engine, controller, LogicalAccess(1, 0, 4, False))
        assert controller.checksum_stats.validations > 0


class TestUndefendedConsumption:
    def test_reads_serve_garbage_silently(self):
        engine, controller, model = build()
        corrupt_one_write(engine, controller, model, 1, 0, 4)
        assert model.remaining > 0
        run_access(engine, controller, LogicalAccess(2, 0, 4, False))
        report = model.report()
        assert report["silent_total"] > 0
        assert report["detected_total"] == 0
        assert controller.checksum_stats.mismatches == 0

    def test_oracle_classifies_silent_consumptions(self):
        engine, controller, model = build()
        oracle = controller.attach_oracle(IntegrityOracle(controller.layout))
        corrupt_one_write(engine, controller, model, 1, 0, 4)
        run_access(engine, controller, LogicalAccess(2, 0, 4, False))
        report = oracle.verify()
        assert report["corruption_events"] > 0
        assert report["disk_corruption"]["silent"]["lost-write"] > 0
        assert report["disk_corruption"]["detected_and_repaired"] == {}

    def test_oracle_classifies_detected_consumptions(self):
        engine, controller, model = build()
        oracle = controller.attach_oracle(IntegrityOracle(controller.layout))
        controller.enable_checksums()
        corrupt_one_write(engine, controller, model, 1, 0, 4)
        run_access(engine, controller, LogicalAccess(2, 0, 4, False))
        report = oracle.verify()
        assert report["corruption_events"] == 0
        detected = report["disk_corruption"]["detected_and_repaired"]
        assert detected["lost-write"] > 0
        assert report["disk_corruption"]["silent"] == {}


class TestParityPollution:
    def test_undefended_rmw_poisons_check_cells(self):
        """A small write's pre-read over stale data folds garbage into
        the RMW delta: the stripe's check cells are now poisoned."""
        engine, controller, model = build()
        corrupt_one_write(engine, controller, model, 1, 0, 1)
        run_access(engine, controller, LogicalAccess(2, 0, 1, True))
        assert model.injected["parity-pollution"] > 0

    def test_version_cross_check_blocks_pollution(self):
        engine, controller, model = build()
        controller.enable_checksums()
        corrupt_one_write(engine, controller, model, 1, 0, 1)
        run_access(engine, controller, LogicalAccess(2, 0, 1, True))
        assert model.injected["parity-pollution"] == 0
        assert controller.checksum_stats.stale_rmw_detected > 0


class TestWriteVerify:
    def test_read_back_catches_loss_at_write_time(self):
        engine, controller, model = build()
        controller.enable_checksums(write_verify=True)
        for disk in range(controller.layout.n):
            model.begin_burst(disk, 0.5, 0.0)
        for i in range(8):
            run_access(
                engine, controller, LogicalAccess(10 + i, i * 4, 4, True)
            )
        for disk in range(controller.layout.n):
            model.end_burst(disk)
        stats = controller.checksum_stats
        assert stats.verify_reads > 0
        assert stats.mismatches > 0
        assert model.report()["silent_total"] == 0

    def test_verify_costs_latency(self):
        def write_ms(verify):
            engine, controller, model = build()
            controller.enable_checksums(write_verify=verify)
            return run_access(
                engine, controller, LogicalAccess(1, 0, 4, True)
            )

        assert write_ms(True) > write_ms(False)

    def test_metadata_latency_charged_per_write(self):
        def write_ms(latency):
            engine, controller, model = build()
            controller.enable_checksums(metadata_latency_ms=latency)
            return run_access(
                engine, controller, LogicalAccess(1, 0, 4, True)
            )

        # The metadata persist defers the platter phase, so the write
        # completes later (the exact delta folds in rotational position).
        assert write_ms(0.5) > write_ms(0.0)

    def test_rejects_negative_latency(self):
        engine, controller, model = build()
        with pytest.raises(ConfigurationError):
            controller.enable_checksums(metadata_latency_ms=-1.0)


class TestInactiveByteIdentity:
    def test_attached_zero_rate_model_changes_nothing(self):
        """The determinism contract: attaching an all-zero-rate model
        (checksums off) leaves every completion time and the engine
        event count byte-identical to a controller without one."""

        def trace(with_model):
            engine = SimulationEngine()
            controller = ArrayController(
                engine, make_layout("pddl", 13, 4)
            )
            if with_model:
                controller.attach_corruption(
                    CorruptionModel(13, ROWS, seed="inactive")
                )
            times = []
            for i in range(12):
                controller.submit(
                    LogicalAccess(i, i * 7, 3, is_write=(i % 2 == 0)),
                    lambda acc, ms: times.append((acc.access_id, ms)),
                )
            engine.run()
            return times, engine.events_processed

        assert trace(True) == trace(False)
