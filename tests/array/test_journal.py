"""Unit tests for the NVRAM dirty-stripe journal."""

import pytest

from repro.array.journal import StripeJournal
from repro.errors import ConfigurationError, SimulationError


class TestStripeJournal:
    def test_mark_and_clear_round_trip(self):
        journal = StripeJournal()
        journal.mark([3, 7, 1])
        assert journal.dirty_stripes() == [1, 3, 7]
        assert journal.dirty_count == 3
        assert journal.is_dirty(7) and not journal.is_dirty(2)
        journal.clear([3, 7, 1])
        assert journal.dirty_stripes() == []
        assert journal.dirty_count == 0

    def test_overlapping_writes_are_reference_counted(self):
        # Two in-flight writes sharing stripe 4: the first completion
        # must not clean a stripe the second write still has open.
        journal = StripeJournal()
        journal.mark([3, 4])
        journal.mark([4, 5])
        journal.clear([3, 4])
        assert journal.is_dirty(4)
        assert journal.dirty_stripes() == [4, 5]
        journal.clear([4, 5])
        assert journal.dirty_stripes() == []

    def test_clearing_a_clean_stripe_is_a_bug(self):
        journal = StripeJournal()
        journal.mark([1])
        with pytest.raises(SimulationError, match="clean stripe"):
            journal.clear([2])

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            StripeJournal(latency_ms=-0.1)

    def test_counters_and_peak(self):
        journal = StripeJournal(latency_ms=0.2)
        journal.mark([1, 2, 3])
        journal.mark([4])
        journal.clear([1, 2, 3])
        assert journal.to_dict() == {
            "latency_ms": 0.2,
            "marks": 2,
            "clears": 1,
            "dirty": 1,
            "peak_dirty": 4,
        }

    def test_reset_empties_the_log(self):
        journal = StripeJournal()
        journal.mark([1, 2])
        journal.reset()
        assert journal.dirty_stripes() == []
        # After replay the log is reusable for fresh writes.
        journal.mark([9])
        journal.clear([9])
        assert journal.dirty_stripes() == []
