"""Tests for the analytic working-set computation (Figure 3)."""

import pytest

from repro.array.raidops import ArrayMode
from repro.errors import ConfigurationError
from repro.layouts import make_layout
from repro.stats.workingset import (
    average_operation_count,
    average_working_set,
    working_set_table,
)


@pytest.fixture(scope="module")
def layouts():
    return {
        "pddl": make_layout("pddl", 13, 4),
        "raid5": make_layout("raid5", 13, 13),
        "datum": make_layout("datum", 13, 4),
        "prime": make_layout("prime", 13, 4),
        "parity-declustering": make_layout("parity-declustering", 13, 4),
    }


class TestSingleValues:
    def test_raid5_read_equals_span(self, layouts):
        for span in (1, 6, 12):
            assert average_working_set(layouts["raid5"], span, False) == span

    def test_single_unit_read_everywhere(self, layouts):
        for name, lay in layouts.items():
            assert average_working_set(lay, 1, False) == 1.0, name

    def test_degraded_single_read_working_set(self, layouts):
        # 1/n of reads land on the failed disk and fan out to k-1 disks.
        lay = layouts["pddl"]
        ws = average_working_set(
            lay, 1, False, mode=ArrayMode.DEGRADED, failed_disk=0
        )
        n, k = 13, 4
        # In one period, data units on the failed disk: fraction ~1/n... the
        # exact expectation: (lost * (k-1) + (total - lost) * 1) / total.
        total = lay.data_units_per_period
        lost = sum(
            1
            for u in range(total)
            if lay.data_unit_address(u).disk == 0
        )
        expected = (lost * (k - 1) + (total - lost)) / total
        assert ws == pytest.approx(expected)

    def test_bad_span(self, layouts):
        with pytest.raises(ConfigurationError):
            average_working_set(layouts["raid5"], 0, False)

    def test_explicit_starts(self, layouts):
        ws = average_working_set(
            layouts["raid5"], 12, False, starts=[0, 12, 24]
        )
        assert ws == 12.0
        with pytest.raises(ConfigurationError):
            average_working_set(layouts["raid5"], 1, False, starts=[])


class TestPaperOrderings:
    """Figure 3's qualitative orderings at the paper's access sizes."""

    @pytest.mark.parametrize("size_kb", [48, 96])
    def test_small_access_ordering(self, layouts, size_kb):
        # DWS(DATUM) <= DWS(ParityDecl) <= DWS(PDDL) <= DWS(PRIME) <= RAID5.
        span = size_kb // 8
        ws = {
            name: average_working_set(lay, span, False)
            for name, lay in layouts.items()
        }
        assert ws["datum"] <= ws["parity-declustering"] + 1e-9
        assert ws["parity-declustering"] <= ws["pddl"] + 1e-9
        assert ws["pddl"] <= ws["prime"] + 1e-9
        assert ws["prime"] <= ws["raid5"] + 1e-9

    @pytest.mark.parametrize("size_kb", [192, 240])
    def test_large_access_ordering(self, layouts, size_kb):
        # Above 120KB PDDL and Parity Declustering switch places.
        span = size_kb // 8
        ws = {
            name: average_working_set(lay, span, False)
            for name, lay in layouts.items()
        }
        assert ws["datum"] <= ws["pddl"] + 1e-9
        assert ws["pddl"] <= ws["parity-declustering"] + 1e-9
        assert ws["prime"] <= ws["raid5"] + 1e-9

    def test_raid5_saturates_first(self, layouts):
        # RAID-5 reaches its ceiling at smaller sizes than the declustered
        # layouts; declustered reads never reach 13 at 240KB.
        span = 30
        assert average_working_set(layouts["raid5"], span, False) == 13.0
        for name in ("pddl", "datum", "parity-declustering"):
            assert average_working_set(layouts[name], span, False) < 13.0


class TestOperationCounts:
    def test_read_ops_equal_span(self, layouts):
        for name, lay in layouts.items():
            assert average_operation_count(lay, 6, False) == 6.0, name

    def test_write_ops_exceed_span(self, layouts):
        for name, lay in layouts.items():
            assert average_operation_count(lay, 6, True) > 6.0, name


class TestTable:
    def test_full_table_shape(self, layouts):
        table = working_set_table(
            {"pddl": layouts["pddl"]}, sizes_kb=[8, 48]
        )
        assert set(table) == {
            ("pddl", 8, "ffread"),
            ("pddl", 8, "ffwrite"),
            ("pddl", 8, "f1read"),
            ("pddl", 8, "f1write"),
            ("pddl", 48, "ffread"),
            ("pddl", 48, "ffwrite"),
            ("pddl", 48, "f1read"),
            ("pddl", 48, "f1write"),
        }

    def test_unaligned_size_rejected(self, layouts):
        with pytest.raises(ConfigurationError):
            working_set_table({"pddl": layouts["pddl"]}, sizes_kb=[12])
