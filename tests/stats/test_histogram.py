"""Tests for the log-bucketed latency histogram."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stats.histogram import LatencyHistogram


class TestBasics:
    def test_empty_queries_raise(self):
        h = LatencyHistogram()
        with pytest.raises(ConfigurationError):
            h.percentile(50)
        with pytest.raises(ConfigurationError):
            _ = h.mean

    def test_mean_exact(self):
        h = LatencyHistogram()
        for v in [1.0, 2.0, 3.0]:
            h.record(v)
        assert h.mean == pytest.approx(2.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyHistogram().record(-1.0)

    def test_bad_construction(self):
        with pytest.raises(ConfigurationError):
            LatencyHistogram(min_ms=0)
        with pytest.raises(ConfigurationError):
            LatencyHistogram(min_ms=10, max_ms=5)
        with pytest.raises(ConfigurationError):
            LatencyHistogram(buckets_per_decade=0)

    def test_bad_percentile(self):
        h = LatencyHistogram()
        h.record(1.0)
        with pytest.raises(ConfigurationError):
            h.percentile(0)
        with pytest.raises(ConfigurationError):
            h.percentile(101)


class TestAccuracy:
    def test_percentile_relative_error(self):
        h = LatencyHistogram()
        rng = random.Random(1)
        samples = sorted(rng.expovariate(0.02) + 1.0 for _ in range(5000))
        for s in samples:
            h.record(s)
        for p in (50, 90, 99):
            exact = samples[int(len(samples) * p / 100) - 1]
            approx = h.percentile(p)
            assert approx == pytest.approx(exact, rel=0.08), p

    def test_monotone_percentiles(self):
        h = LatencyHistogram()
        rng = random.Random(2)
        for _ in range(1000):
            h.record(rng.uniform(0.5, 500))
        values = [h.percentile(p) for p in (10, 50, 90, 99, 100)]
        assert values == sorted(values)

    def test_clamping_out_of_range(self):
        h = LatencyHistogram(min_ms=1.0, max_ms=100.0)
        h.record(0.001)
        h.record(1e9)
        assert h.count == 2
        assert h.percentile(100) >= 100.0

    @given(st.lists(st.floats(min_value=0.1, max_value=1e5), min_size=1, max_size=200))
    def test_percentile_bounds_samples(self, values):
        h = LatencyHistogram()
        for v in values:
            h.record(v)
        # p100 upper bound must be >= max sample; p-smallest <= ~min*1.05.
        assert h.percentile(100) >= max(values) * 0.99
        assert h.percentile(1) >= min(values) * 0.9


class TestMerge:
    def test_merge_equals_combined(self):
        a, b, c = (LatencyHistogram() for _ in range(3))
        rng = random.Random(3)
        for _ in range(500):
            v = rng.uniform(1, 1000)
            a.record(v)
            c.record(v)
        for _ in range(500):
            v = rng.uniform(1, 1000)
            b.record(v)
            c.record(v)
        a.merge(b)
        assert a.count == c.count
        for p in (50, 95):
            assert a.percentile(p) == c.percentile(p)

    def test_shape_mismatch(self):
        a = LatencyHistogram(buckets_per_decade=10)
        b = LatencyHistogram(buckets_per_decade=20)
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_summary_row(self):
        h = LatencyHistogram()
        assert h.summary_row() == "empty"
        h.record(5.0)
        assert "p95" in h.summary_row()
