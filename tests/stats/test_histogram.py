"""Tests for the log-bucketed latency histogram."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stats.histogram import LatencyHistogram


class TestBasics:
    def test_empty_queries_raise(self):
        h = LatencyHistogram()
        with pytest.raises(ConfigurationError):
            h.percentile(50)
        with pytest.raises(ConfigurationError):
            _ = h.mean

    def test_mean_exact(self):
        h = LatencyHistogram()
        for v in [1.0, 2.0, 3.0]:
            h.record(v)
        assert h.mean == pytest.approx(2.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyHistogram().record(-1.0)

    def test_bad_construction(self):
        with pytest.raises(ConfigurationError):
            LatencyHistogram(min_ms=0)
        with pytest.raises(ConfigurationError):
            LatencyHistogram(min_ms=10, max_ms=5)
        with pytest.raises(ConfigurationError):
            LatencyHistogram(buckets_per_decade=0)

    def test_bad_percentile(self):
        h = LatencyHistogram()
        h.record(1.0)
        with pytest.raises(ConfigurationError):
            h.percentile(0)
        with pytest.raises(ConfigurationError):
            h.percentile(101)


class TestAccuracy:
    def test_percentile_relative_error(self):
        h = LatencyHistogram()
        rng = random.Random(1)
        samples = sorted(rng.expovariate(0.02) + 1.0 for _ in range(5000))
        for s in samples:
            h.record(s)
        for p in (50, 90, 99):
            exact = samples[int(len(samples) * p / 100) - 1]
            approx = h.percentile(p)
            assert approx == pytest.approx(exact, rel=0.08), p

    def test_monotone_percentiles(self):
        h = LatencyHistogram()
        rng = random.Random(2)
        for _ in range(1000):
            h.record(rng.uniform(0.5, 500))
        values = [h.percentile(p) for p in (10, 50, 90, 99, 100)]
        assert values == sorted(values)

    def test_clamping_out_of_range(self):
        h = LatencyHistogram(min_ms=1.0, max_ms=100.0)
        h.record(0.001)
        h.record(1e9)
        assert h.count == 2
        assert h.percentile(100) >= 100.0

    @given(st.lists(st.floats(min_value=0.1, max_value=1e5), min_size=1, max_size=200))
    def test_percentile_bounds_samples(self, values):
        h = LatencyHistogram()
        for v in values:
            h.record(v)
        # p100 upper bound must be >= max sample; p-smallest <= ~min*1.05.
        assert h.percentile(100) >= max(values) * 0.99
        assert h.percentile(1) >= min(values) * 0.9


class TestMerge:
    def test_merge_equals_combined(self):
        a, b, c = (LatencyHistogram() for _ in range(3))
        rng = random.Random(3)
        for _ in range(500):
            v = rng.uniform(1, 1000)
            a.record(v)
            c.record(v)
        for _ in range(500):
            v = rng.uniform(1, 1000)
            b.record(v)
            c.record(v)
        a.merge(b)
        assert a.count == c.count
        for p in (50, 95):
            assert a.percentile(p) == c.percentile(p)

    def test_shape_mismatch(self):
        a = LatencyHistogram(buckets_per_decade=10)
        b = LatencyHistogram(buckets_per_decade=20)
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_merge_takes_elementwise_max(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(10.0)
        b.record(250.0)
        a.merge(b)
        assert a.max_sample_ms == 250.0
        assert a.describe()["max_ms"] == 250.0

    def test_summary_row(self):
        h = LatencyHistogram()
        assert h.summary_row() == "empty"
        h.record(5.0)
        row = h.summary_row()
        assert "p95" in row
        assert "p999" in row
        assert "max" in row


class TestDescribe:
    def test_empty_describe_is_all_none(self):
        desc = LatencyHistogram().describe()
        assert desc["count"] == 0
        for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms", "p999_ms",
                    "max_ms"):
            assert desc[key] is None

    def test_describe_percentiles_and_exact_max(self):
        h = LatencyHistogram()
        for i in range(1, 2001):
            h.record(i / 2.0)
        desc = h.describe()
        assert desc["count"] == 2000
        assert desc["p50_ms"] == pytest.approx(500.0, rel=0.06)
        assert desc["p99_ms"] == pytest.approx(990.0, rel=0.06)
        assert desc["p999_ms"] == pytest.approx(999.0, rel=0.06)
        assert desc["max_ms"] == 1000.0  # exact sample, not a bucket edge
        assert desc["p50_ms"] <= desc["p99_ms"] <= desc["p999_ms"]

    def test_p999_separates_a_thin_tail(self):
        """A 2-in-1000 tail moves p999/max but not p99."""
        h = LatencyHistogram()
        for _ in range(4990):
            h.record(10.0)
        for _ in range(10):
            h.record(5000.0)
        desc = h.describe()
        assert desc["p99_ms"] < 20.0
        assert desc["p999_ms"] > 1000.0
        assert desc["max_ms"] == 5000.0


class TestDictRoundTrip:
    def test_round_trip_preserves_max(self):
        h = LatencyHistogram()
        for v in (3.0, 77.7, 912.5):
            h.record(v)
        clone = LatencyHistogram.from_dict(h.to_dict())
        assert clone.count == h.count
        assert clone.max_sample_ms == 912.5
        assert clone.describe() == h.describe()

    def test_tolerates_pre_max_dicts(self):
        """Cached records written before max_sample_ms existed must
        still load; the exact max degrades to the p100 bucket bound."""
        h = LatencyHistogram()
        h.record(42.0)
        data = h.to_dict()
        del data["max_sample_ms"]
        clone = LatencyHistogram.from_dict(data)
        assert clone.count == 1
        assert clone.max_sample_ms >= 42.0
