"""Per-mode latency accounting and the StoppingRule warmup property."""

import pytest

from repro.errors import ConfigurationError
from repro.stats import LatencyByMode, StoppingRule


class TestLatencyByMode:
    def test_bins_by_mode(self):
        by_mode = LatencyByMode()
        by_mode.record("fault-free", 10.0)
        by_mode.record("fault-free", 20.0)
        by_mode.record("degraded", 40.0)
        assert by_mode.samples("fault-free") == 2
        assert by_mode.samples("degraded") == 1
        assert by_mode.samples("reconstruction") == 0
        assert by_mode.mean("fault-free") == 15.0
        assert by_mode.total_samples == 3

    def test_unknown_mode_histogram_raises(self):
        with pytest.raises(ConfigurationError):
            LatencyByMode().histogram("nope")

    def test_round_trip_is_exact(self):
        by_mode = LatencyByMode()
        for i in range(50):
            by_mode.record("fault-free", 10.0 + i * 0.3)
            by_mode.record("degraded", 30.0 + i * 0.7)
        clone = LatencyByMode.from_dict(by_mode.to_dict())
        assert clone.to_dict() == by_mode.to_dict()
        assert clone.mean("degraded") == by_mode.mean("degraded")

    def test_to_dict_orders_modes(self):
        by_mode = LatencyByMode()
        by_mode.record("z-mode", 1.0)
        by_mode.record("a-mode", 1.0)
        assert list(by_mode.to_dict()) == ["a-mode", "z-mode"]


class TestWarmupDone:
    def test_tracks_the_warmup_prefix(self):
        rule = StoppingRule(warmup=3, min_samples=2, check_interval=1)
        assert not rule.warmup_done
        rule.offer(10.0)
        rule.offer(10.0)
        assert not rule.warmup_done
        rule.offer(10.0)
        assert rule.warmup_done
        assert rule.samples == 0
        rule.offer(10.0)
        assert rule.warmup_done
        assert rule.samples == 1

    def test_zero_warmup_is_immediately_done(self):
        rule = StoppingRule(warmup=0, min_samples=2, check_interval=1)
        assert rule.warmup_done
