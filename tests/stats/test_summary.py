"""Tests for streaming summaries and the stopping rule."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stats.confidence import StoppingRule
from repro.stats.summary import SummaryStats


class TestSummaryStats:
    def test_known_values(self):
        s = SummaryStats()
        for x in [2, 4, 4, 4, 5, 5, 7, 9]:
            s.push(float(x))
        assert s.mean == 5.0
        assert s.variance == pytest.approx(32 / 7)
        assert s.minimum == 2.0 and s.maximum == 9.0

    def test_empty_mean_raises(self):
        with pytest.raises(ConfigurationError):
            _ = SummaryStats().mean

    def test_single_sample(self):
        s = SummaryStats()
        s.push(3.0)
        assert s.mean == 3.0
        assert s.variance == 0.0
        assert s.ci_halfwidth() == math.inf

    def test_ci_shrinks_with_samples(self):
        rng = random.Random(0)
        s = SummaryStats()
        widths = []
        for i in range(1, 1001):
            s.push(rng.gauss(10, 2))
            if i in (100, 1000):
                widths.append(s.ci_halfwidth())
        assert widths[1] < widths[0]

    def test_unsupported_confidence(self):
        s = SummaryStats()
        s.push(1.0)
        s.push(2.0)
        with pytest.raises(ConfigurationError):
            s.ci_halfwidth(0.8)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_matches_naive_formulas(self, values):
        s = SummaryStats()
        for v in values:
            s.push(v)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert s.mean == pytest.approx(mean, abs=1e-6, rel=1e-9)
        assert s.variance == pytest.approx(var, abs=1e-4, rel=1e-6)

    @given(
        st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=30),
        st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=30),
    )
    def test_merge_equals_combined(self, xs, ys):
        a, b, c = SummaryStats(), SummaryStats(), SummaryStats()
        for x in xs:
            a.push(x)
            c.push(x)
        for y in ys:
            b.push(y)
            c.push(y)
        a.merge(b)
        assert a.count == c.count
        assert a.mean == pytest.approx(c.mean, abs=1e-7, rel=1e-9)
        assert a.variance == pytest.approx(c.variance, abs=1e-5, rel=1e-6)

    def test_merge_empty(self):
        a, b = SummaryStats(), SummaryStats()
        a.push(1.0)
        a.merge(b)  # no-op
        assert a.count == 1
        b.merge(a)
        assert b.count == 1


class TestStoppingRule:
    def test_converges_on_stable_stream(self):
        rule = StoppingRule(
            rel_precision=0.02, warmup=10, min_samples=50, check_interval=10
        )
        rng = random.Random(1)
        stopped_at = None
        for i in range(100_000):
            if rule.offer(rng.gauss(100, 5)):
                stopped_at = i
                break
        assert stopped_at is not None
        assert rule.converged and not rule.capped

    def test_caps_on_noisy_stream(self):
        rule = StoppingRule(
            rel_precision=0.001,
            warmup=0,
            min_samples=10,
            max_samples=500,
            check_interval=10,
        )
        rng = random.Random(2)
        for _ in range(1000):
            if rule.offer(rng.expovariate(0.01)):
                break
        assert rule.capped and not rule.converged
        assert rule.samples == 500

    def test_warmup_discarded(self):
        rule = StoppingRule(warmup=5, min_samples=2, check_interval=1,
                            rel_precision=0.5)
        for _ in range(5):
            assert not rule.offer(1000.0)  # warmup junk
        assert rule.samples == 0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            StoppingRule(rel_precision=0.0)
        with pytest.raises(ConfigurationError):
            StoppingRule(min_samples=1)
        with pytest.raises(ConfigurationError):
            StoppingRule(min_samples=100, max_samples=50)
        with pytest.raises(ConfigurationError):
            StoppingRule(check_interval=0)
