"""Cross-module integration tests.

These tie together the analytic tools, the planner, and the simulator —
the invariants that make the figure reproductions trustworthy.
"""

import random

import pytest

from repro import (
    AccessSpec,
    ArrayController,
    ClosedLoopClient,
    LogicalAccess,
    Reconstructor,
    SimulationEngine,
    UniformGenerator,
    make_layout,
)
from repro.array.raidops import ArrayMode
from repro.experiments.config import paper_layout
from repro.stats.seekcount import seek_mix_per_access
from repro.stats.summary import SummaryStats
from repro.stats.workingset import average_working_set


def run_clients(
    controller, engine, spec, clients, samples, seed=0, coalesce=None
):
    stats = SummaryStats()

    def on_response(client, access, ms):
        stats.push(ms)
        if stats.count == samples:
            engine.stop()  # exactly once; later strays must not re-stop
        return stats.count < samples

    units = spec.units()
    for c in range(clients):
        gen = UniformGenerator(
            controller.addressable_data_units, units,
            random.Random(f"{seed}/{c}"),
        )
        ClosedLoopClient(c, controller, gen, spec, on_response).start()
    engine.run()
    return stats


class TestAnalyticVsSimulated:
    """The paper's own cross-check: Figure 4's non-local seek counts must
    equal Figure 3's working set sizes, measured through entirely
    different code paths."""

    @pytest.mark.parametrize(
        "name,size_kb",
        [("pddl", 96), ("datum", 96), ("raid5", 192), ("prime", 48)],
    )
    def test_nonlocal_seeks_equal_working_set(self, name, size_kb):
        layout = paper_layout(name)
        engine = SimulationEngine()
        controller = ArrayController(engine, layout, coalesce=False)
        run_clients(
            controller, engine, AccessSpec(size_kb, False), 6, 250
        )
        measured = seek_mix_per_access(
            controller.disk_stats(), controller.completed_accesses
        ).non_local
        analytic = average_working_set(layout, size_kb // 8, False)
        assert measured == pytest.approx(analytic, rel=0.1)


class TestEndToEndRecovery:
    """Fail, rebuild, and serve — the full PDDL recovery story."""

    def test_full_lifecycle(self):
        engine = SimulationEngine()
        controller = ArrayController(engine, make_layout("pddl", 13, 4))

        # Phase 1: fault-free traffic.
        ff = run_clients(
            controller, engine, AccessSpec(24, False), 4, 150
        )

        # Phase 2: failure + background rebuild under load.
        controller.fail_disk(3)
        recon = Reconstructor(controller, parallel_steps=2, rows=13 * 5)
        recon.start()
        state = {"n": 0}

        def on_response(client, access, ms):
            state["n"] += 1
            return state["n"] < 400 or controller.mode.value == "degraded"

        for c in range(4):
            gen = UniformGenerator(
                controller.addressable_data_units, 3,
                random.Random(f"x/{c}"),
            )
            ClosedLoopClient(
                100 + c, controller, gen, AccessSpec(24, False), on_response
            ).start()
        engine.run()

        assert recon.finished_ms is not None
        assert controller.mode is ArrayMode.POST_RECONSTRUCTION
        # The failed disk serviced nothing after the failure.
        assert controller.servers[3].stats.operations > 0  # from phase 1
        ops_after = controller.servers[3].stats.operations

        # Phase 3: post-reconstruction traffic leaves it untouched.
        post = run_clients(
            controller, engine, AccessSpec(24, False), 4, 150, seed=9
        )
        assert controller.servers[3].stats.operations == ops_after
        assert post.mean > 0 and ff.mean > 0

    def test_raid5_has_no_recovery_path(self):
        engine = SimulationEngine()
        controller = ArrayController(engine, make_layout("raid5", 13, 13))
        controller.fail_disk(0)
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            Reconstructor(controller)


class TestDeterminism:
    def test_same_seed_same_simulation(self):
        def run():
            engine = SimulationEngine()
            controller = ArrayController(engine, make_layout("prime", 13, 4))
            stats = run_clients(
                controller, engine, AccessSpec(48, True), 5, 120, seed=7
            )
            return stats.mean, engine.now, engine.events_processed

        assert run() == run()

    def test_different_layouts_differ(self):
        def run(name, k):
            engine = SimulationEngine()
            controller = ArrayController(engine, make_layout(name, 13, k))
            return run_clients(
                controller, engine, AccessSpec(96, False), 5, 120, seed=7
            ).mean

        assert run("datum", 4) != run("raid5", 13)


class TestWorkConservation:
    def test_busy_time_matches_throughput(self):
        """Total disk busy time must equal the sum of service components."""
        engine = SimulationEngine()
        controller = ArrayController(engine, make_layout("pddl", 13, 4))
        run_clients(controller, engine, AccessSpec(96, False), 8, 200)
        for server in controller.servers:
            s = server.stats
            assert s.busy_ms == pytest.approx(
                s.seek_ms + s.latency_ms + s.transfer_ms
            )
            # A disk can't be busy much longer than the simulation ran
            # (its final request may still be in flight when the stop
            # fires, so allow one service time of slack).
            assert s.busy_ms <= engine.now + 60.0

    def test_all_disks_participate(self):
        engine = SimulationEngine()
        controller = ArrayController(engine, make_layout("pddl", 13, 4))
        run_clients(controller, engine, AccessSpec(96, False), 8, 200)
        assert all(s.operations > 0 for s in controller.disk_stats())

    def test_writes_generate_more_ops_than_reads(self):
        def total_ops(is_write):
            engine = SimulationEngine()
            controller = ArrayController(
                engine, make_layout("raid5", 13, 13), coalesce=False
            )
            run_clients(
                controller, engine, AccessSpec(48, is_write), 4, 150
            )
            return (
                controller.total_stats().operations
                / controller.completed_accesses
            )

        assert total_ops(True) > total_ops(False) * 1.5
