"""Lifecycle experiment: one continuous run through all four regimes.

The acceptance bar for the fault subsystem: a single simulation
traverses fault-free -> degraded -> reconstruction -> post-reconstruction
under constant client load, and the degraded-mode mean response is no
better than the fault-free mean at equal load.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.lifecycle import run_lifecycle
from repro.faults import FaultScenario
from repro.workload.spec import AccessSpec

#: Long enough dwell/rebuild windows that each regime collects a real
#: sample population at 4 clients.
SCENARIO = FaultScenario(
    failed_disk=0,
    fault_time_ms=500.0,
    degraded_dwell_ms=800.0,
    rebuild_rows=26,
)


def run(layout="pddl", scenario=SCENARIO, **kwargs):
    kwargs.setdefault("clients", 4)
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("max_samples", 3000)
    kwargs.setdefault("post_samples", 80)
    return run_lifecycle(
        layout, AccessSpec(24, False), scenario=scenario, **kwargs
    )


class TestAcceptance:
    def test_single_run_traverses_all_four_regimes(self):
        result = run()
        assert [mode for mode, _ in result.transitions] == [
            "fault-free",
            "degraded",
            "reconstruction",
            "post-reconstruction",
        ]
        assert result.complete
        assert all(
            result.by_mode.samples(mode) > 0
            for mode, _ in result.transitions
        )

    def test_degraded_mean_at_least_fault_free_mean(self):
        result = run()
        assert result.by_mode.mean("degraded") >= result.by_mode.mean(
            "fault-free"
        )


class TestResultShape:
    def test_samples_and_bins_are_consistent(self):
        result = run()
        assert result.by_mode.total_samples == result.samples
        assert result.fault_time_ms == 500.0
        assert result.fault_disk == 0

    def test_rebuild_bookkeeping(self):
        result = run()
        assert result.rebuild_duration_ms is not None
        assert result.rebuild_duration_ms > 0
        assert result.rebuild_steps == result.rebuild_total_steps
        assert result.rebuild_fraction == 1.0
        # 26 rows of a 13-disk PDDL period: 2 spare cells on the failed
        # disk, so 24 lost units.
        assert result.rebuild_total_steps == 24

    def test_progress_timeline_is_monotonic(self):
        result = run()
        assert len(result.progress) == result.rebuild_total_steps
        times = [t for t, _ in result.progress.points]
        fractions = [f for _, f in result.progress.points]
        assert times == sorted(times)
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_mode_summary_rows_render(self):
        result = run()
        rows = result.mode_summary_rows()
        assert len(rows) == 4
        assert rows[0].startswith("fault-free")

    def test_replacement_layout_lifecycle(self):
        result = run("parity-declustering")
        assert result.complete
        assert result.rebuild_total_steps == 26

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            run(clients=0)
        with pytest.raises(ConfigurationError):
            run(max_samples=0)


class TestDeterminism:
    def test_identical_calls_identical_results(self):
        a, b = run(), run()
        assert a.transitions == b.transitions
        assert a.by_mode.to_dict() == b.by_mode.to_dict()
        assert a.progress.points == b.progress.points
        assert a.rebuild_duration_ms == b.rebuild_duration_ms
