"""Corruption defense trials: tier contract, mechanics, determinism."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.corruption import (
    DEFENSES,
    OUTCOMES,
    corruption_specs,
    run_corruption_trial,
    summarize_corruption,
)
from repro.runner import (
    CorruptionTrialSpec,
    ParallelRunner,
    canonical_json,
    execute_spec,
)

# Small-but-meaningful: enough arrivals over a tight working set that
# corrupt cells are actually re-read within the trial.
QUICK = dict(arrivals=120, trial=0, seed=0)


class TestTrialMechanics:
    def test_trial_accounts_every_arrival(self):
        record = run_corruption_trial("pddl", "none", **QUICK)
        assert record["offered"] == 120
        assert record["completed"] + record["shed"] == 120
        assert record["classification"] in OUTCOMES
        json.dumps(record)  # the record must be JSON-able as-is

    def test_defense_keys_are_gated(self):
        none = run_corruption_trial("pddl", "none", **QUICK)
        assert "checksum" not in none
        assert "scrub_audit" not in none
        checksum = run_corruption_trial("pddl", "checksum", **QUICK)
        assert "checksum" in checksum and "scrub_audit" not in checksum
        audit = run_corruption_trial("pddl", "audit", **QUICK)
        assert "checksum" in audit and "scrub_audit" in audit

    def test_undefended_trial_serves_silent_corruption(self):
        record = run_corruption_trial("pddl", "none", **QUICK)
        assert record["corruption"]["silent_total"] > 0
        assert record["classification"] == "silent_corruption"
        assert record["oracle"]["corruption_events"] > 0

    @pytest.mark.parametrize("defense", ["checksum", "verify", "audit"])
    def test_defended_tiers_never_serve_garbage(self, defense):
        record = run_corruption_trial("pddl", defense, **QUICK)
        ledger = record["corruption"]
        assert ledger["silent_total"] == 0
        assert ledger["detected_total"] > 0
        assert record["classification"] == "detected_and_repaired"
        assert record["oracle"]["corruption_events"] == 0

    def test_audit_drains_latent_cells(self):
        checksum = run_corruption_trial("pddl", "checksum", **QUICK)
        audit = run_corruption_trial("pddl", "audit", **QUICK)
        assert audit["corruption"]["remaining"] <= checksum[
            "corruption"
        ]["remaining"]
        assert audit["scrub_audit"]["stripes_audited"] > 0

    def test_defenses_cost_latency(self):
        none = run_corruption_trial("pddl", "none", **QUICK)
        verify = run_corruption_trial("pddl", "verify", **QUICK)
        assert (
            verify["latency"]["write"]["mean_ms"]
            > none["latency"]["write"]["mean_ms"]
        )

    def test_degraded_trial_still_defended(self):
        record = run_corruption_trial(
            "pddl", "checksum", fail_at_ms=5_000.0, **QUICK
        )
        assert record["corruption"]["silent_total"] == 0
        assert record["transitions"]

    def test_trials_decorrelate(self):
        a = run_corruption_trial("pddl", "none", arrivals=120, trial=0)
        b = run_corruption_trial("pddl", "none", arrivals=120, trial=1)
        assert (
            a["corruption"]["cells_corrupted"]
            != b["corruption"]["cells_corrupted"]
            or a["latency"]["all"]["mean_ms"]
            != b["latency"]["all"]["mean_ms"]
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_corruption_trial("pddl", "prayer", **QUICK)
        with pytest.raises(ConfigurationError):
            run_corruption_trial("pddl", "none", lost_rate=1.5)
        with pytest.raises(ConfigurationError):
            run_corruption_trial("pddl", "none", arrivals=0)
        with pytest.raises(ConfigurationError):
            run_corruption_trial("pddl", "none", span_units=0)


class TestSummary:
    def test_spec_builder_covers_the_grid(self):
        specs = corruption_specs(["raid5", "pddl"], trials=3)
        assert len(specs) == 2 * len(DEFENSES) * 3
        assert {s.layout for s in specs} == {"raid5", "pddl"}
        assert {s.defense for s in specs} == set(DEFENSES)

    def test_summary_contrasts_tiers(self):
        records = [
            run_corruption_trial("pddl", defense, **QUICK)
            for defense in DEFENSES
        ]
        summary = summarize_corruption(records)
        assert summary["trials"] == len(DEFENSES)
        assert summary["undefended_silent_total"] > 0
        assert summary["defended_silent_total"] == 0
        assert summary["silent_by_defense"]["none"] > 0
        for defense in ("checksum", "verify", "audit"):
            assert summary["silent_by_defense"][defense] == 0
        assert summary["latency_cost_vs_none"]["pddl"]["verify"] > 1.0

    def test_summary_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            summarize_corruption([])


class TestRunnerIntegration:
    def test_execute_spec_wraps_the_trial(self):
        spec = CorruptionTrialSpec(layout="pddl", defense="checksum",
                                   arrivals=120)
        record = execute_spec(spec)
        assert record["kind"] == "corruption"
        trial = record["corruption"]
        assert trial["completed"] + trial["shed"] == 120
        assert record["spec"]["layout"] == "pddl"

    def test_serial_vs_parallel_byte_identity(self):
        specs = corruption_specs(
            ["raid5", "pddl"], defenses=("none", "audit"), trials=2,
            arrivals=120,
        )
        serial = ParallelRunner(workers=1).run(specs)
        parallel = ParallelRunner(workers=4).run(specs)
        assert serial.executed == parallel.executed == len(specs)
        assert canonical_json(serial.records) == canonical_json(
            parallel.records
        )

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            CorruptionTrialSpec(layout="pddl", defense="hope")
        with pytest.raises(ConfigurationError):
            CorruptionTrialSpec(layout="pddl", lost_rate=-0.1)
        with pytest.raises(ConfigurationError):
            CorruptionTrialSpec(layout="pddl", rate_per_s=0.0)
        with pytest.raises(ConfigurationError):
            CorruptionTrialSpec(layout="pddl", span_units=0)
