"""Tests asserting Table 2's parameters are encoded faithfully."""

from repro.disk import hp2247
from repro.experiments import config
from repro.workload.spec import PAPER_ACCESS_SIZES_KB, PAPER_CLIENT_COUNTS


class TestTable2:
    def test_array_shape(self):
        assert config.PAPER_DISKS == 13
        assert config.PAPER_STRIPE_WIDTH == 4
        assert config.PAPER_STRIPE_UNIT_KB == 8
        assert config.PAPER_SCHEDULER == "sstf"
        assert config.PAPER_SCHEDULER_WINDOW == 20

    def test_workload_parameters(self):
        assert PAPER_ACCESS_SIZES_KB[0] == 8
        assert PAPER_ACCESS_SIZES_KB[-1] == 336
        assert PAPER_CLIENT_COUNTS == (1, 2, 4, 8, 10, 15, 20, 25)

    def test_disk_parameters(self):
        assert hp2247.CYLINDERS == 1981
        assert hp2247.HEADS == 13
        assert hp2247.ZONES == 8
        assert hp2247.RPM == 5400.0
        assert hp2247.AVERAGE_SEEK_MS == 10.0
        # 5400 RPM -> 11.12 ms/rev (Table 2 value, rounded).
        assert abs(60_000 / hp2247.RPM - 11.12) < 0.01

    def test_five_layouts(self):
        layouts = config.paper_layouts()
        assert set(layouts) == {
            "datum", "parity-declustering", "raid5", "pddl", "prime",
        }
        for name, layout in layouts.items():
            expected_k = 13 if name == "raid5" else 4
            assert layout.k == expected_k, name
            assert layout.n == 13

    def test_capacity_overheads_match_section4(self):
        layouts = config.paper_layouts()
        assert abs(layouts["raid5"].parity_overhead - 0.077) < 0.001
        for name in ("prime", "datum", "parity-declustering"):
            assert abs(layouts[name].parity_overhead - 0.25) < 1e-9
        assert abs(layouts["pddl"].parity_overhead - 0.231) < 0.001
        assert abs(layouts["pddl"].spare_overhead - 0.077) < 0.001
