"""Tests for the response-time experiment driver (integration level)."""

import pytest

from repro.array.raidops import ArrayMode
from repro.errors import ConfigurationError
from repro.experiments.response import (
    run_figure,
    run_response_curve,
    run_response_point,
)
from repro.workload.spec import AccessSpec

FAST = dict(max_samples=120, use_stopping_rule=False, warmup=10)


class TestSinglePoint:
    def test_point_fields(self):
        point = run_response_point(
            "raid5", AccessSpec(8, False), clients=2, **FAST
        )
        assert point.layout == "raid5"
        assert point.samples == 120
        assert point.mean_response_ms > 0
        assert point.throughput_per_s > 0
        assert point.seek_mix.total > 0

    def test_deterministic_for_seed(self):
        a = run_response_point("pddl", AccessSpec(8, False), 2, seed=3, **FAST)
        b = run_response_point("pddl", AccessSpec(8, False), 2, seed=3, **FAST)
        assert a.mean_response_ms == b.mean_response_ms

    def test_different_seeds_differ(self):
        a = run_response_point("pddl", AccessSpec(8, False), 2, seed=3, **FAST)
        b = run_response_point("pddl", AccessSpec(8, False), 2, seed=4, **FAST)
        assert a.mean_response_ms != b.mean_response_ms

    def test_degraded_mode(self):
        point = run_response_point(
            "pddl", AccessSpec(48, False), 4,
            mode=ArrayMode.DEGRADED, **FAST,
        )
        assert point.mode == "degraded"

    def test_post_reconstruction_mode(self):
        point = run_response_point(
            "pddl", AccessSpec(8, False), 4,
            mode=ArrayMode.POST_RECONSTRUCTION, **FAST,
        )
        assert point.mode == "post-reconstruction"

    def test_zero_clients_rejected(self):
        with pytest.raises(ConfigurationError):
            run_response_point("pddl", AccessSpec(8, False), 0, **FAST)

    def test_stopping_rule_convergence(self):
        point = run_response_point(
            "raid5", AccessSpec(8, False), 1,
            max_samples=5000, rel_precision=0.1,
            use_stopping_rule=True, warmup=10,
        )
        assert point.converged
        assert point.samples < 5000


class TestCurvesAndFigures:
    def test_curve_shape(self):
        curve = run_response_curve(
            "raid5", AccessSpec(8, False), [1, 4], **FAST
        )
        assert [p.clients for p in curve.points] == [1, 4]

    def test_response_grows_with_load(self):
        curve = run_response_curve(
            "pddl", AccessSpec(96, False), [1, 25], **FAST
        )
        assert (
            curve.points[1].mean_response_ms > curve.points[0].mean_response_ms
        )

    def test_throughput_grows_with_load(self):
        curve = run_response_curve(
            "pddl", AccessSpec(96, False), [1, 25], **FAST
        )
        assert (
            curve.points[1].throughput_per_s > curve.points[0].throughput_per_s
        )

    def test_figure_panel(self):
        panel = run_figure(
            ["raid5", "pddl"], AccessSpec(8, False), [1], **FAST
        )
        assert set(panel) == {"raid5", "pddl"}


class TestPaperShapes:
    """Spot-check the paper's qualitative claims at reduced sample counts."""

    def test_8kb_reads_similar_across_layouts(self):
        # §4.1: "In the 8KB case, performance is very similar".
        points = {
            name: run_response_point(
                name, AccessSpec(8, False), 4, seed=1, **FAST
            ).mean_response_ms
            for name in ("pddl", "raid5", "datum")
        }
        spread = max(points.values()) / min(points.values())
        assert spread < 1.25

    def test_light_load_prime_beats_datum(self):
        # §4.1: PRIME among the very best, DATUM poor, for light workloads.
        prime = run_response_point(
            "prime", AccessSpec(96, False), 1, seed=1, **FAST
        )
        datum = run_response_point(
            "datum", AccessSpec(96, False), 1, seed=1, **FAST
        )
        assert prime.mean_response_ms < datum.mean_response_ms

    def test_raid5_degraded_reads_collapse(self):
        # §4.1: "RAID-5's run-time performance degrades significantly; this
        # phenomenon is the rationale for declustering."
        ff = run_response_point(
            "raid5", AccessSpec(48, False), 8, seed=1, **FAST
        )
        f1 = run_response_point(
            "raid5", AccessSpec(48, False), 8, seed=1,
            mode=ArrayMode.DEGRADED, **FAST,
        )
        pddl_ff = run_response_point(
            "pddl", AccessSpec(48, False), 8, seed=1, **FAST
        )
        pddl_f1 = run_response_point(
            "pddl", AccessSpec(48, False), 8, seed=1,
            mode=ArrayMode.DEGRADED, **FAST,
        )
        raid5_blowup = f1.mean_response_ms / ff.mean_response_ms
        pddl_blowup = pddl_f1.mean_response_ms / pddl_ff.mean_response_ms
        assert raid5_blowup > pddl_blowup

    def test_raid5_writes_suffer_at_48kb(self):
        # §4.2: RAID-5 much slower than declustered layouts for 48KB writes
        # (small writes vs frequent full-stripe writes).
        raid5 = run_response_point(
            "raid5", AccessSpec(48, True), 8, seed=1, **FAST
        )
        pddl = run_response_point(
            "pddl", AccessSpec(48, True), 8, seed=1, **FAST
        )
        assert raid5.mean_response_ms > pddl.mean_response_ms

    def test_degraded_writes_not_worse_for_declustered(self):
        # §4.2: declustered degraded writes are slightly *better* than
        # fault-free (the failed disk cannot be written).
        ff = run_response_point(
            "pddl", AccessSpec(192, True), 8, seed=1, **FAST
        )
        f1 = run_response_point(
            "pddl", AccessSpec(192, True), 8, seed=1,
            mode=ArrayMode.DEGRADED, **FAST,
        )
        assert f1.mean_response_ms < ff.mean_response_ms * 1.1
