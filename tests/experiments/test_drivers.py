"""Tests for the seek-mix, working-set, Table 1, and Table 3 drivers."""

import pytest

from repro.array.raidops import ArrayMode
from repro.experiments.seeks import run_seek_mix
from repro.experiments.table1 import reproduce_table1, solve_cell
from repro.experiments.table3 import table3_rows
from repro.experiments.workingset import FIGURE3_SIZES_KB, figure3_table


class TestSeekMix:
    def test_nonlocal_tracks_working_set(self):
        # §4.1: non-local seek counts equal the disk working set sizes.
        from repro.stats.workingset import average_working_set
        from repro.experiments.config import paper_layout

        mixes = run_seek_mix(
            ["pddl"], [96], is_write=False, samples_per_point=200, clients=8
        )
        analytic = average_working_set(paper_layout("pddl"), 12, False)
        measured = mixes[("pddl", 96)].non_local
        assert measured == pytest.approx(analytic, rel=0.1)

    def test_degraded_mix_larger(self):
        ff = run_seek_mix(["pddl"], [96], False, samples_per_point=150)
        f1 = run_seek_mix(
            ["pddl"], [96], False,
            mode=ArrayMode.DEGRADED, samples_per_point=150,
        )
        assert f1[("pddl", 96)].total > ff[("pddl", 96)].total


class TestFigure3Driver:
    def test_full_grid(self):
        table = figure3_table(sizes_kb=[8, 96], layout_names=("pddl", "raid5"))
        assert len(table) == 2 * 2 * 4
        assert table[("raid5", 96, "ffread")] == 12.0

    def test_default_sizes(self):
        assert FIGURE3_SIZES_KB == (8, 48, 96, 144, 192, 240)


class TestTable1Driver:
    def test_prime_cell_solved_constructively(self):
        cell = solve_cell(6, 2)  # k = 6, g = 2 -> n = 13, prime
        assert cell.group_size == 1
        assert cell.method == "bose"
        assert cell.paper_value == 1

    def test_power_of_two_cell(self):
        cell = solve_cell(5, 3)  # n = 16
        assert cell.group_size == 1
        assert cell.method == "gf2"

    def test_search_cell(self):
        cell = solve_cell(5, 4, restarts=20, max_steps=2000)  # n = 21
        assert cell.group_size is not None
        assert cell.method == "search"

    def test_unsolved_cell_renders_question_mark(self):
        cell = solve_cell(10, 2, restarts=1, max_steps=20, p_max=1)
        assert cell.rendered() == "?"

    def test_small_grid(self):
        cells = reproduce_table1(
            widths=[5], stripe_counts=[1, 2], restarts=6, max_steps=600
        )
        assert set(cells) == {(5, 1), (5, 2)}
        # n = 6 and n = 11: both solvable with a solitary permutation.
        assert cells[(5, 2)].group_size == 1


class TestTable3Driver:
    def test_rows(self):
        rows = table3_rows(iterations=2000)
        assert set(rows) == {
            "parity-declustering", "datum", "prime", "pddl", "pseudo-random",
        }
        assert rows["pddl"].table_entries == 13      # p * n
        assert rows["datum"].table_entries == 0
        assert rows["prime"].table_entries == 0
        assert rows["parity-declustering"].table_entries == 52
        assert rows["pddl"].sparing
        assert not rows["datum"].sparing
        assert rows["pseudo-random"].period_rows is None
        for row in rows.values():
            assert row.translation_ns > 0
            assert row.as_row()
