"""Open-loop traffic trials: phases, overload, determinism."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.openloop import (
    openloop_specs,
    run_openloop_trial,
    summarize_openloop,
)
from repro.runner import (
    OpenLoopSpec,
    ParallelRunner,
    canonical_json,
    execute_spec,
)


class TestTrialMechanics:
    def test_fault_free_trial_accounts_every_arrival(self):
        record = run_openloop_trial("pddl", 300.0, arrivals=80)
        assert record["offered"] == 80
        assert record["completed"] + record["shed"] == 80
        assert record["truncated"] is False
        assert record["modes"] == {"fault-free": 80}
        assert record["tail"]["count"] == record["completed"]
        json.dumps(record)  # the record must be JSON-able as-is

    def test_degraded_phase_serves_in_degraded_mode(self):
        record = run_openloop_trial(
            "raid5", 300.0, phase="degraded", arrivals=60
        )
        assert set(record["modes"]) == {"degraded"}
        # The dwell outlasts the run: the rebuild never starts.
        assert record["rebuild"]["steps"] == 0
        assert record["rebuild"]["finished"] is False

    def test_rebuild_phase_serves_mid_rebuild(self):
        record = run_openloop_trial(
            "pddl", 300.0, phase="rebuild", arrivals=60
        )
        assert set(record["modes"]) == {"reconstruction"}
        # The throttled full-disk sweep outlasts the measurement window.
        assert record["rebuild"]["steps"] > 0
        assert record["rebuild"]["finished"] is False
        assert 0.0 < record["rebuild"]["fraction"] < 1.0

    def test_rebuild_tail_dominates_fault_free_tail(self):
        ff = run_openloop_trial("raid5", 450.0, arrivals=200)
        rebuild = run_openloop_trial(
            "raid5", 450.0, phase="rebuild", arrivals=200
        )
        assert rebuild["tail"]["p999_ms"] > ff["tail"]["p999_ms"]

    def test_overload_at_saturating_rate(self):
        record = run_openloop_trial(
            "raid5",
            900.0,
            phase="rebuild",
            arrivals=300,
            queue_depth=32,
        )
        assert record["overloaded"] is True
        assert record["shed"] > 0

    def test_horizon_truncates(self):
        record = run_openloop_trial(
            "pddl", 100.0, arrivals=400, horizon_ms=500.0
        )
        assert record["truncated"] is True
        assert record["completed"] + record["shed"] < 400

    def test_timelines_opt_in(self):
        record = run_openloop_trial(
            "pddl", 400.0, arrivals=60, record_timelines=True
        )
        assert "timelines" in record
        assert record["timelines"]["queue_depth"]
        lean = run_openloop_trial("pddl", 400.0, arrivals=60)
        assert "timelines" not in lean

    def test_mmpp_and_trace_arrivals_run(self):
        for arrival in ("mmpp", "trace"):
            record = run_openloop_trial(
                "datum", 300.0, arrival=arrival, arrivals=60
            )
            assert record["arrival"] == arrival
            assert record["completed"] + record["shed"] == 60

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_openloop_trial("pddl", 300.0, phase="mid-air")
        with pytest.raises(ConfigurationError):
            run_openloop_trial("pddl", 300.0, arrivals=0)
        with pytest.raises(ConfigurationError):
            run_openloop_trial("pddl", 300.0, arrival="constant")
        with pytest.raises(ConfigurationError):
            run_openloop_trial("pddl", 300.0, horizon_ms=0.0)


class TestSummary:
    def test_knees_and_divergence(self):
        records = []
        for rate in (350.0, 450.0):
            for phase in ("ff", "rebuild"):
                records.append(
                    run_openloop_trial(
                        "raid5", rate, phase=phase, arrivals=300
                    )
                )
        summary = summarize_openloop(records)
        assert summary["trials"] == 4
        # The committed baseline's raid5 story: rebuild overloads at
        # 350/s while fault-free stays healthy until past 450/s.
        assert summary["knees"]["raid5"]["rebuild"] == 350.0
        assert summary["knees"]["raid5"]["ff"] is None
        diverging = [d["rate_per_s"] for d in summary["divergence"]]
        assert 350.0 in diverging

    def test_spec_builder_covers_the_grid(self):
        specs = openloop_specs(
            ["pddl", "raid5"], [300.0, 500.0], phases=["ff", "rebuild"]
        )
        assert len(specs) == 8
        assert {s.kind for s in specs} == {"openloop"}
        assert {(s.layout, s.rate_per_s, s.phase) for s in specs} == {
            (layout, rate, phase)
            for layout in ("pddl", "raid5")
            for rate in (300.0, 500.0)
            for phase in ("ff", "rebuild")
        }


class TestRunnerIntegration:
    def test_execute_spec_wraps_the_trial(self):
        spec = OpenLoopSpec(layout="pddl", rate_per_s=300.0, arrivals=60)
        record = execute_spec(spec)
        assert record["kind"] == "openloop"
        assert record["openloop"]["completed"] + record["openloop"][
            "shed"
        ] == 60
        assert record["spec"]["layout"] == "pddl"

    def test_serial_vs_parallel_byte_identity(self):
        specs = openloop_specs(
            ["raid5", "pddl"],
            [350.0, 550.0],
            phases=["ff", "rebuild"],
            arrivals=100,
        )
        serial = ParallelRunner(workers=1).run(specs)
        parallel = ParallelRunner(workers=4).run(specs)
        assert serial.executed == parallel.executed == len(specs)
        assert canonical_json(serial.records) == canonical_json(
            parallel.records
        )

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            OpenLoopSpec(layout="pddl", rate_per_s=-1.0)
        with pytest.raises(ConfigurationError):
            OpenLoopSpec(layout="pddl", phase="sideways")
        with pytest.raises(ConfigurationError):
            OpenLoopSpec(layout="pddl", arrival="bursts")
        with pytest.raises(ConfigurationError):
            OpenLoopSpec(layout="pddl", slo_p99_ms=200.0, slo_p999_ms=100.0)
        with pytest.raises(ConfigurationError):
            OpenLoopSpec(layout="pddl", failed_disk=13)
