"""Fail-slow defense trials: mechanics, layout contrast, determinism."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.failslow import (
    failslow_specs,
    run_failslow_trial,
    summarize_failslow,
)
from repro.runner import (
    FailSlowTrialSpec,
    ParallelRunner,
    canonical_json,
    execute_spec,
)

# Small-but-meaningful knobs: a short rebuild keeps test trials fast
# while still overlapping the whole traffic window.
QUICK = dict(arrivals=150, rebuild_rows=60)


class TestTrialMechanics:
    def test_trial_accounts_every_arrival(self):
        record = run_failslow_trial("pddl", **QUICK)
        assert record["offered"] == 150
        assert record["completed"] + record["shed"] == 150
        assert record["truncated"] is False
        assert record["rebuild"]["finished"] is True
        assert record["failslow"]["applications"] > 0
        json.dumps(record)  # the record must be JSON-able as-is

    def test_defense_keys_are_gated(self):
        none = run_failslow_trial("pddl", defense="none", **QUICK)
        assert "hedging" not in none
        assert "adaptive" not in none
        hedge = run_failslow_trial("pddl", defense="hedge", **QUICK)
        assert "hedging" in hedge and "adaptive" not in hedge
        adaptive = run_failslow_trial("pddl", defense="adaptive", **QUICK)
        assert "adaptive" in adaptive and "hedging" not in adaptive
        both = run_failslow_trial("pddl", defense="both", **QUICK)
        assert "hedging" in both and "adaptive" in both

    def test_hedge_accounting_balances(self):
        record = run_failslow_trial("pddl", defense="hedge", **QUICK)
        hedging = record["hedging"]
        assert hedging["launched"] > 0
        assert hedging["won"] + hedging["lost"] == hedging["launched"]
        assert hedging["detector"]["quarantines"] >= 1

    def test_raid5_mid_rebuild_has_no_hedge_redundancy(self):
        # Every raid5 stripe contains the failed disk; until the sweep
        # frontier passes, a hedge has nothing to read from.
        record = run_failslow_trial("raid5", defense="hedge", **QUICK)
        hedging = record["hedging"]
        assert hedging["aborts"] > 0
        assert hedging["aborts"] >= hedging["won"]

    def test_adaptive_reacts_to_the_foreground(self):
        record = run_failslow_trial("pddl", defense="adaptive", **QUICK)
        adaptive = record["adaptive"]
        assert adaptive["backoffs"] + adaptive["sprints"] > 0
        assert adaptive["peak_ms"] <= 512.0

    def test_horizon_truncates(self):
        record = run_failslow_trial(
            "pddl", arrivals=400, horizon_ms=500.0
        )
        assert record["truncated"] is True

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_failslow_trial("pddl", defense="prayer")
        with pytest.raises(ConfigurationError):
            run_failslow_trial("pddl", arrivals=0)
        with pytest.raises(ConfigurationError):
            run_failslow_trial("pddl", slow_disk=0, failed_disk=0)
        with pytest.raises(ConfigurationError):
            run_failslow_trial("pddl", slow_multiplier=1.0)
        with pytest.raises(ConfigurationError):
            run_failslow_trial("pddl", horizon_ms=0.0)
        with pytest.raises(ConfigurationError):
            run_failslow_trial("pddl", slow_disk=99)


class TestSummary:
    def test_spec_builder_covers_the_grid(self):
        specs = failslow_specs(["pddl", "raid5"])
        assert len(specs) == 8
        assert {s.kind for s in specs} == {"failslow"}
        assert {(s.layout, s.defense) for s in specs} == {
            (layout, defense)
            for layout in ("pddl", "raid5")
            for defense in ("none", "hedge", "adaptive", "both")
        }

    def test_summary_contrasts_defenses(self):
        records = [
            run_failslow_trial("pddl", defense=defense, **QUICK)
            for defense in ("none", "hedge", "adaptive")
        ]
        summary = summarize_failslow(records)
        assert summary["trials"] == 3
        hedging = summary["hedging"]["pddl"]
        assert hedging["launched"] > 0
        assert hedging["win_rate"] is not None
        adaptive = summary["adaptive"]["pddl"]
        assert adaptive["rebuild_inflation"] is not None
        assert adaptive["backoffs"] >= 0


class TestRunnerIntegration:
    def test_execute_spec_wraps_the_trial(self):
        spec = FailSlowTrialSpec(layout="pddl", **QUICK)
        record = execute_spec(spec)
        assert record["kind"] == "failslow"
        trial = record["failslow"]
        assert trial["completed"] + trial["shed"] == 150
        assert record["spec"]["layout"] == "pddl"

    def test_serial_vs_parallel_byte_identity(self):
        specs = failslow_specs(["raid5", "pddl"], **QUICK)
        serial = ParallelRunner(workers=1).run(specs)
        parallel = ParallelRunner(workers=4).run(specs)
        assert serial.executed == parallel.executed == len(specs)
        assert canonical_json(serial.records) == canonical_json(
            parallel.records
        )

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FailSlowTrialSpec(layout="pddl", defense="hope")
        with pytest.raises(ConfigurationError):
            FailSlowTrialSpec(layout="pddl", rate_per_s=0.0)
        with pytest.raises(ConfigurationError):
            FailSlowTrialSpec(layout="pddl", slow_disk=0)
        with pytest.raises(ConfigurationError):
            FailSlowTrialSpec(layout="pddl", slow_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            FailSlowTrialSpec(layout="pddl", hedge_deferral_ms=0.0)
        with pytest.raises(ConfigurationError):
            FailSlowTrialSpec(
                layout="pddl", slo_p99_ms=300.0, slo_p999_ms=100.0
            )
