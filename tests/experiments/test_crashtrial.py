"""Tests for crash/recovery trials (the ``repro crash`` experiment)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.crashtrial import (
    crash_specs,
    run_crash_trial,
    summarize_crash,
)
from repro.runner import canonical_json

QUICK = dict(clients=2, seed=1, crash_boundary=30, max_pre_samples=60,
             post_samples=10)


class TestOutcomes:
    def test_journaled_crash_recovers_by_replaying_the_dirty_set(self):
        record = run_crash_trial("pddl", **QUICK)
        assert record["classification"] == "recovered"
        assert record["crash"]["fired"]
        resync = record["resync"]
        # The replayed dirty set covers the omniscient torn set (dirty
        # ⊇ torn: journal marks clear only at plan completion), and
        # every swept stripe was accounted recompute or skip.
        assert resync["stripes_swept"] >= len(
            record["crash"]["torn_stripes"]
        )
        assert resync["recomputed"] + resync["parity_lost_skipped"] <= (
            resync["stripes_swept"]
        )
        assert record["resync_ms"] > 0
        assert record["oracle"]["corruption_events"] == 0
        assert record["oracle"]["suspect_stripes"] == 0
        assert record["post"]["samples"] == 10

    def test_journal_off_full_sweep_is_the_expensive_baseline(self):
        journaled = run_crash_trial("pddl", **QUICK)
        swept = run_crash_trial("pddl", journal=False, **QUICK)
        assert swept["classification"] == "recovered"
        assert swept["journal_latency_ms"] is None
        # Same crash, same consistency outcome — wildly more work.
        assert (
            swept["resync"]["recomputed"]
            > 3 * journaled["resync"]["recomputed"]
        )
        assert swept["resync_ms"] > journaled["resync_ms"]
        assert swept["oracle"]["corruption_events"] == 0

    def test_crash_while_degraded_hits_the_write_hole(self):
        record = run_crash_trial(
            "raid5", disks=5, width=5, clients=4, seed=3,
            crash_boundary=40, fail_disk_at_ms=5.0, failed_disk=2,
            max_pre_samples=120, post_samples=10,
        )
        assert record["degraded"]
        assert record["classification"] == "data_loss"
        assert "write hole" in record["loss_reason"]
        # No post-crash clients run against a lost array.
        assert record["post"]["samples"] == 0

    def test_boundary_past_the_workload_is_no_crash(self):
        record = run_crash_trial(
            "pddl", clients=1, seed=0, crash_boundary=100000,
            max_pre_samples=30, post_samples=5,
        )
        assert record["classification"] == "no_crash"
        assert not record["crash"]["fired"]
        assert record["resync"] is None

    def test_transient_errors_ride_along_and_are_recovered(self):
        record = run_crash_trial(
            "pddl", transient_io_rate=0.05, clients=2, seed=2,
            crash_boundary=30, max_pre_samples=60, post_samples=10,
        )
        assert record["classification"] == "recovered"
        recovery = record["io_recovery"]
        assert recovery["transient_failures"] > 0
        assert recovery["retries"] > 0
        assert record["oracle"]["corruption_events"] == 0

    def test_io_recovery_key_only_appears_when_enabled(self):
        # Byte-determinism: inactive features add no record keys.
        record = run_crash_trial("pddl", **QUICK)
        assert "io_recovery" not in record

    def test_trials_are_deterministic(self):
        first = run_crash_trial("pddl", **QUICK)
        second = run_crash_trial("pddl", **QUICK)
        assert canonical_json(first) == canonical_json(second)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            run_crash_trial("pddl", clients=0)


class TestJournalLatency:
    """NVRAM append cost in the response-time curves.

    Sub-millisecond appends are *absorbed* by rotation: the delayed
    submission still completes in the same rotational slot, so the
    response curve is flat until the append cost rivals the rotational
    granularity (see EXPERIMENTS.md).  At >= 2 ms per append the shift
    must be visible.
    """

    ARGS = dict(clients=1, seed=0, crash_boundary=100,
                max_pre_samples=150, post_samples=10)

    def test_submillisecond_append_is_rotationally_absorbed(self):
        baseline = run_crash_trial("pddl", journal=False, **self.ARGS)
        journaled = run_crash_trial(
            "pddl", journal_latency_ms=0.05, **self.ARGS
        )
        assert journaled["pre"]["mean_ms"] == pytest.approx(
            baseline["pre"]["mean_ms"], abs=0.5
        )

    def test_slow_nvram_is_visible_in_the_curve(self):
        baseline = run_crash_trial("pddl", journal=False, **self.ARGS)
        slow = run_crash_trial("pddl", journal_latency_ms=5.0, **self.ARGS)
        assert (
            slow["pre"]["mean_ms"] - baseline["pre"]["mean_ms"] > 2.0
        )


class TestSweepAndSummary:
    def test_crash_specs_sweep_shape(self):
        specs = crash_specs(client_counts=[2, 4])
        assert len(specs) == 4  # 1 layout x 2 client counts x journal 2
        assert {s.journal for s in specs} == {True, False}
        assert all(s.crash_boundary < s.max_pre_samples for s in specs)

    def test_summarize_requires_records(self):
        with pytest.raises(ConfigurationError):
            summarize_crash([])

    def test_summary_speedup(self):
        records = [
            run_crash_trial("pddl", **QUICK),
            run_crash_trial("pddl", journal=False, **QUICK),
        ]
        summary = summarize_crash(records)
        assert summary["trials"] == 2
        assert summary["corruption_events"] == 0
        assert summary["data_loss_trials"] == 0
        assert summary["resync_speedup"] > 1.0
        assert (
            summary["stripes_recomputed_full_sweep"]
            > summary["stripes_recomputed_journal"]
        )
