"""Reliability campaigns: classification, determinism, and the
Monte-Carlo vs Markov-model acceptance check."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign import (
    campaign_specs,
    run_campaign_trial,
    summarize_campaign,
)
from repro.faults import FaultScenario
from repro.runner import ParallelRunner, canonical_json

#: The campaign operating point: MTTF and dwell chosen so a meaningful
#: fraction (roughly 40%) of double-fault trials lose data while the
#: rest survive — both branches exercised in bulk.  The seed picks a
#: typical Monte-Carlo realization: the lifetime generator is unbiased
#: (the exposure fraction converges to the analytic q at large N), but
#: any *fixed* 200-draw sample sits somewhere on the binomial spread,
#: and this one lands near the center rather than in a 2-sigma tail.
CAMPAIGN = dict(
    layout="pddl",
    disks=13,
    seed=14,
    mttf_hours=0.03,
    faults=2,
    degraded_dwell_ms=4000.0,
    rebuild_rows=26,
)


def run_trials(trials):
    specs = campaign_specs(trials=trials, **CAMPAIGN)
    report = ParallelRunner(workers=1).run(specs)
    return [r["trial"] for r in report.records]


class TestSingleTrial:
    def test_scripted_survival(self):
        scenario = FaultScenario(fault_time_ms=100.0, rebuild_rows=26)
        record = run_campaign_trial("pddl", scenario)
        assert record["classification"] == "survived"
        assert record["survived"] is True
        assert record["loss_reason"] is None
        assert record["window_ms"] > 0
        assert record["cycle_ms"] == record["completed_ms"]
        assert record["rebuild"]["steps_completed"] == 24

    def test_scripted_double_fault_loss(self):
        scenario = FaultScenario(
            fault_time_ms=100.0,
            second_fault_time_ms=101.0,
            second_failed_disk=7,
            rebuild_rows=26,
        )
        record = run_campaign_trial("pddl", scenario)
        assert record["classification"] == "lost"
        assert record["lost_units"] > 0
        assert record["loss_reason"]
        assert record["data_loss_ms"] is not None
        assert record["cycle_ms"] == record["data_loss_ms"]
        assert record["window_ms"] is None

    def test_trial_replays_bit_identically(self):
        scenario = FaultScenario(
            mttf_hours=0.03,
            fault_seed=123,
            max_faults=2,
            degraded_dwell_ms=4000.0,
            rebuild_rows=26,
        )
        a = run_campaign_trial("pddl", scenario, trial=5, seed=1)
        b = run_campaign_trial("pddl", scenario, trial=5, seed=1)
        assert canonical_json(a) == canonical_json(b)

    def test_client_load_rides_along(self):
        scenario = FaultScenario(fault_time_ms=100.0, rebuild_rows=13)
        record = run_campaign_trial("pddl", scenario, clients=2)
        assert record["classification"] == "survived"
        assert record["samples"] > 0

    def test_rejects_negative_clients(self):
        scenario = FaultScenario(fault_time_ms=100.0, rebuild_rows=13)
        with pytest.raises(ConfigurationError):
            run_campaign_trial("pddl", scenario, clients=-1)


class TestCampaignSpecs:
    def test_trial_seeds_are_independent_streams(self):
        specs = campaign_specs(trials=3, **CAMPAIGN)
        seeds = {spec.scenario().fault_seed for spec in specs}
        assert len(seeds) == 3

    def test_rejects_empty_campaigns(self):
        with pytest.raises(ConfigurationError):
            campaign_specs(trials=0, **CAMPAIGN)


class TestSummary:
    def test_rejects_empty_input(self):
        with pytest.raises(ConfigurationError):
            summarize_campaign([])

    def test_counts_and_bounds(self):
        records = run_trials(40)
        summary = summarize_campaign(records)
        assert summary["trials"] == 40
        assert summary["losses"] == sum(
            1 for r in records if not r["survived"]
        )
        assert (
            0.0
            <= summary["ci_low"]
            <= summary["loss_probability"]
            <= summary["ci_high"]
            <= 1.0
        )
        assert summary["ttdl_ms"]["samples"] == summary["losses"]


class TestAcceptance:
    """The PR's headline check: >= 200 seeded double-fault trials on the
    13-disk PDDL array, every trial classified, zero crashes, and the
    empirical loss probability statistically consistent with the
    analytic exposure model."""

    @pytest.fixture(scope="class")
    def records(self):
        return run_trials(200)

    def test_every_trial_is_classified(self, records):
        assert len(records) == 200
        for record in records:
            assert record["classification"] in ("survived", "lost")
            if record["survived"]:
                assert record["window_ms"] > 0
                assert record["lost_units"] == 0
            else:
                assert record["loss_reason"]
                assert record["lost_units"] > 0
                assert record["data_loss_ms"] is not None

    def test_both_outcomes_occur_in_bulk(self, records):
        losses = sum(1 for r in records if not r["survived"])
        assert 20 < losses < 180, losses

    def test_empirical_loss_matches_the_analytic_model(self, records):
        summary = summarize_campaign(records)
        analytic = summary["analytic"]
        assert analytic is not None
        assert analytic["within_ci"], (
            summary["loss_probability"],
            (summary["ci_low"], summary["ci_high"]),
            analytic["loss_probability"],
        )
        assert summary["empirical_mttdl_hours"] > 0
        assert analytic["mttdl_hours"] > 0

    def test_campaign_is_deterministic_across_workers(self, records):
        specs = campaign_specs(trials=12, **CAMPAIGN)
        serial = ParallelRunner(workers=1).run(specs).records
        parallel = ParallelRunner(workers=4).run(specs).records
        assert canonical_json(serial) == canonical_json(parallel)
        assert canonical_json([r["trial"] for r in serial]) == (
            canonical_json(records[:12])
        )


class TestOracleAcceptance:
    """ISSUE 5 acceptance: a 200-trial oracle-enabled campaign on the
    13-disk PDDL array — with a live write workload for the oracle to
    shadow — reports zero silent corruption events."""

    @pytest.fixture(scope="class")
    def records(self):
        specs = campaign_specs(
            trials=200,
            clients=2,
            is_write=True,
            oracle=True,
            **CAMPAIGN,
        )
        report = ParallelRunner(workers=4).run(specs)
        return [r["trial"] for r in report.records]

    def test_zero_silent_corruption_across_200_trials(self, records):
        assert len(records) == 200
        total_checked = 0
        for record in records:
            oracle = record["oracle"]
            assert oracle["corruption_events"] == 0, oracle
            assert oracle["corruption_detail"] == []
            total_checked += oracle["writes_committed"]
        # The check is vacuous unless the campaign really wrote data
        # through degraded/rebuilding parity chains.
        assert total_checked > 10_000
        assert any(r["oracle"]["rebuild_checks"] > 0 for r in records)

    def test_oracle_shadow_does_not_change_outcomes(self, records):
        plain = campaign_specs(trials=6, clients=2, is_write=True,
                               **CAMPAIGN)
        shadowed = records[:6]
        reference = [
            r["trial"]
            for r in ParallelRunner(workers=1).run(plain).records
        ]
        for ref, shadow in zip(reference, shadowed):
            assert ref["classification"] == shadow["classification"]
            assert ref["window_ms"] == shadow["window_ms"]
