"""Tests for the analytic-vs-simulated validation harness."""

from repro.experiments.validation import ValidationRow, validation_rows


class TestValidationRow:
    def test_relative_error(self):
        row = ValidationRow("x", "pddl", analytic=10.0, simulated=10.5)
        assert row.relative_error == 0.05

    def test_zero_analytic(self):
        row = ValidationRow("x", "pddl", analytic=0.0, simulated=0.3)
        assert row.relative_error == 0.3


class TestValidationRows:
    def test_small_run_agrees(self):
        rows = validation_rows(samples=120)
        assert len(rows) == 10
        for row in rows:
            assert row.relative_error < 0.15, (row.quantity, row.layout)

    def test_covers_reads_writes_and_degraded(self):
        rows = validation_rows(samples=120)
        quantities = " ".join(row.quantity for row in rows)
        assert "write" in quantities
        assert "degraded" in quantities
        assert "working set" in quantities
