"""Nemesis trial execution: classification, scrubbing defence, and the
committed campaign baseline."""

import json
from pathlib import Path

import pytest

from repro.experiments.nemesistrial import (
    nemesis_specs,
    run_nemesis_trial,
    summarize_nemesis,
)
from repro.faults.nemesis import NemesisEvent, NemesisSchedule
from repro.runner import ParallelRunner, canonical_json

REPO_ROOT = Path(__file__).resolve().parents[2]


def scripted(events, rows=26):
    return NemesisSchedule.from_events(events, n_disks=13, rows=rows)


class TestScrubDefendsAgainstLatentErrors:
    """Satellite regression: an LSE burst planted before a disk failure is
    fatal during rebuild unless a scrub pass repairs it first."""

    EVENTS = (
        NemesisEvent(
            time_ms=500.0,
            kind="lse-burst",
            cells=tuple((1, offset) for offset in range(26)),
        ),
        NemesisEvent(time_ms=6000.0, kind="disk-failure", disk=0),
    )

    def test_unscrubbed_array_loses_data(self):
        record = run_nemesis_trial(
            "pddl", scripted(self.EVENTS), seed=3, scrub_interval_ms=None
        )
        assert record["classification"] == "data_loss"
        assert "unreadable sector" in record["loss_reason"]
        assert record["scrub"] is None

    def test_scrubbed_array_survives_the_same_schedule(self):
        record = run_nemesis_trial(
            "pddl", scripted(self.EVENTS), seed=3, scrub_interval_ms=400.0
        )
        assert record["classification"] == "survived"
        assert record["scrub"]["repaired"] >= 26
        assert record["completed_rebuild"] is True

    def test_survival_is_not_an_oracle_blind_spot(self):
        record = run_nemesis_trial(
            "pddl", scripted(self.EVENTS), seed=3, scrub_interval_ms=400.0
        )
        assert record["oracle"]["corruption_events"] == 0
        assert record["oracle"]["rebuild_checks"] > 0


class TestClassification:
    def test_crash_alone_survives_even_without_journal(self):
        """A torn write with every disk healthy is always recoverable:
        resync recomputes parity from surviving data, so the write hole
        only opens when a crash composes with a disk failure."""
        schedule = scripted([NemesisEvent(time_ms=900.0, kind="crash")])
        for journal in (True, False):
            record = run_nemesis_trial(
                "pddl", schedule, seed=5, journal=journal
            )
            assert record["classification"] == "survived"
            assert len(record["crashes"]) == 1
            assert len(record["resyncs"]) == 1

    def test_single_failure_rebuild_survives(self):
        schedule = scripted(
            [NemesisEvent(time_ms=1000.0, kind="disk-failure", disk=4)]
        )
        record = run_nemesis_trial("pddl", schedule, seed=1)
        assert record["classification"] == "survived"
        assert record["completed_rebuild"] is True
        assert record["rebuild"]["steps_completed"] > 0

    def test_storm_window_heals(self):
        schedule = scripted(
            [
                NemesisEvent(
                    time_ms=300.0,
                    kind="transient-storm",
                    rate=0.05,
                    duration_ms=800.0,
                ),
                NemesisEvent(time_ms=4000.0, kind="disk-failure", disk=2),
            ]
        )
        record = run_nemesis_trial("pddl", schedule, seed=2)
        assert record["classification"] == "survived"
        assert record["faults"]["active"] == []
        storm = [
            f for f in record["faults"]["history"]
            if f["kind"] == "transient-storm"
        ]
        assert storm and storm[0]["healed_ms"] is not None

    def test_trial_is_deterministic(self):
        schedule = NemesisSchedule.draw(17, n_disks=13, rows=26)
        first = run_nemesis_trial("pddl", schedule, seed=17)
        second = run_nemesis_trial("pddl", schedule, seed=17)
        assert canonical_json(first) == canonical_json(second)


class TestSummarize:
    def test_counts_and_failing_trials(self):
        records = []
        for trial in range(6):
            spec_schedule = NemesisSchedule.draw(
                seed=9 * 1_000_003 + trial, n_disks=13, rows=26
            )
            records.append(
                run_nemesis_trial(
                    "pddl", spec_schedule, trial=trial, seed=9
                )
            )
        summary = summarize_nemesis(records)
        assert summary["trials"] == 6
        assert (
            summary["survived"]
            + summary["data_loss"]
            + summary["silent_corruption"]
            == 6
        )
        assert summary["silent_corruption"] == 0
        assert summary["corruption_events"] == 0
        assert summary["failing_trials"] == []
        assert sum(summary["events_applied"].values()) > 0

    def test_specs_helper_matches_runner(self):
        specs = nemesis_specs(layout="raid5", trials=3, seed=21)
        report = ParallelRunner(workers=1).run(specs)
        records = [r["nemesis_trial"] for r in report.records]
        assert [r["trial"] for r in records] == [0, 1, 2]
        assert all(r["layout"] == "raid5" for r in records)
        summary = summarize_nemesis(records)
        assert summary["trials"] == 3


class TestCommittedBaseline:
    """Acceptance gate: the committed 200-trial campaign must carry zero
    silent corruption and stay reproducible from its config block."""

    @pytest.fixture(scope="class")
    def baseline(self):
        path = REPO_ROOT / "BENCH_nemesis.json"
        if not path.exists():
            pytest.skip("BENCH_nemesis.json not generated yet")
        return json.loads(path.read_text())

    def test_shape_and_invariants(self, baseline):
        assert baseline["bench"] == "nemesis"
        assert baseline["config"]["trials"] == 200
        assert baseline["config"]["disks"] == 13
        assert baseline["summary"]["trials"] == 200
        assert baseline["summary"]["silent_corruption"] == 0
        assert baseline["summary"]["failing_trials"] == []
        assert len(baseline["trials"]) == 200
        assert all(
            t["corruption_events"] == 0 for t in baseline["trials"]
        )

    def test_provenance_block_present(self, baseline):
        prov = baseline["provenance"]
        assert prov["spec_count"] == 200
        assert len(prov["sweep_hash"]) == 64
        assert isinstance(prov["source_version"], str)

    def test_sampled_trial_replays_identically(self, baseline):
        config = baseline["config"]
        committed = baseline["trials"][7]
        spec = nemesis_specs(
            layout=config["layout"],
            trials=1,
            start=committed["trial"],
            disks=config["disks"],
            seed=config["seed"],
            clients=config["clients"],
            rows=config["rows"],
            journal=config["journal"],
            scrub_interval_ms=config["scrub_interval_ms"],
            max_samples=config["max_samples"],
            transient_io_rate=config["transient_io_rate"],
            lse_per_gb=config["lse_per_gb"],
        )[0]
        report = ParallelRunner(workers=1).run([spec])
        record = report.records[0]["nemesis_trial"]
        assert record["classification"] == committed["classification"]
        assert record["schedule_hash"] == committed["schedule_hash"]
        assert len(record["crashes"]) == committed["crashes"]
