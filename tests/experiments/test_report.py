"""Tests for the ASCII report renderers."""

from repro.experiments.report import (
    ranking_at_heaviest_load,
    ranking_at_lightest_load,
    render_response_curves,
    render_seek_mix_table,
    render_table,
    render_working_set_table,
)
from repro.experiments.response import ResponseCurve, ResponsePoint
from repro.stats.seekcount import SeekMix


def _point(layout, clients, response):
    return ResponsePoint(
        layout=layout,
        spec_label="8KB reads",
        clients=clients,
        mode="fault-free",
        mean_response_ms=response,
        throughput_per_s=clients / response * 1000,
        samples=100,
        converged=True,
        seek_mix=SeekMix(1.0, 0.0, 0.0, 0.0),
    )


def _curves():
    return {
        "pddl": ResponseCurve(
            "pddl", "8KB reads", "fault-free",
            [_point("pddl", 1, 20.0), _point("pddl", 25, 100.0)],
        ),
        "raid5": ResponseCurve(
            "raid5", "8KB reads", "fault-free",
            [_point("raid5", 1, 15.0), _point("raid5", 25, 300.0)],
        ),
    }


class TestRenderers:
    def test_render_table_aligns(self):
        out = render_table(["a", "long-header"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[2:])) >= 1

    def test_render_working_set(self):
        table = {
            ("pddl", 8, cond): 1.0
            for cond in ("ffread", "ffwrite", "f1read", "f1write")
        }
        out = render_working_set_table(table, [8])
        assert "PDDL" in out and "ffread" in out

    def test_render_seek_mix(self):
        out = render_seek_mix_table(
            {("pddl", 8): SeekMix(1.0, 0.1, 0.2, 0.5)}, [8]
        )
        assert "non-local" in out and "1.00" in out

    def test_render_response_curves(self):
        out = render_response_curves(_curves())
        assert "PDDL" in out and "RAID 5" in out
        assert "100.00" in out

    def test_rankings(self):
        curves = _curves()
        assert ranking_at_lightest_load(curves) == ["raid5", "pddl"]
        assert ranking_at_heaviest_load(curves) == ["pddl", "raid5"]


class TestAsciiChart:
    def test_empty(self):
        from repro.experiments.report import render_ascii_chart

        assert render_ascii_chart({}) == "(no data)"

    def test_markers_and_legend(self):
        from repro.experiments.report import render_ascii_chart

        chart = render_ascii_chart(
            {"PDDL": [(10, 20), (50, 100)], "RAID 5": [(10, 25), (40, 200)]},
            width=40,
            height=8,
        )
        assert "A=PDDL" in chart and "B=RAID 5" in chart
        assert "A" in chart and "B" in chart
        assert "accesses/sec" in chart

    def test_single_point_series(self):
        from repro.experiments.report import render_ascii_chart

        chart = render_ascii_chart({"x": [(5.0, 5.0)]})
        assert "A=x" in chart

    def test_curves_to_series(self):
        from repro.experiments.report import curves_to_series

        series = curves_to_series(_curves())
        assert set(series) == {"PDDL", "RAID 5"}
        assert series["PDDL"][0][1] == 20.0
