"""Aggregation of per-trial I/O-recovery counters."""

from repro.experiments.iorecovery import (
    aggregate_io_recovery,
    trial_io_recovery,
)


class TestTrialLookup:
    def test_top_level_block_wins(self):
        record = {"io_recovery": {"retries": 3}}
        assert trial_io_recovery(record) == {"retries": 3}

    def test_instrumentation_fallback(self):
        record = {"instrumentation": {"io_recovery": {"retries": 1}}}
        assert trial_io_recovery(record) == {"retries": 1}

    def test_absent(self):
        assert trial_io_recovery({}) is None
        assert trial_io_recovery({"instrumentation": {}}) is None


class TestAggregate:
    def test_no_reporting_trials_yield_none(self):
        # Summaries must omit the block entirely, not zero-fill it:
        # committed baselines predating the machinery stay byte-stable.
        assert aggregate_io_recovery([{}, {"instrumentation": {}}]) is None

    def test_sums_across_trials_and_counts_reporters(self):
        records = [
            {"io_recovery": {"retries": 2, "escalated_reads": 1}},
            {},
            {
                "instrumentation": {
                    "io_recovery": {
                        "retries": 3,
                        "hedges_launched": 5,
                        "hedges_won": 4,
                    }
                }
            },
        ]
        totals = aggregate_io_recovery(records)
        assert totals == {
            "trials_reporting": 2,
            "escalated_reads": 1,
            "hedges_launched": 5,
            "hedges_won": 4,
            "retries": 5,
        }

    def test_key_union_keeps_hedge_counters_optional(self):
        totals = aggregate_io_recovery(
            [{"io_recovery": {"retries": 1}}]
        )
        assert "hedges_launched" not in totals
