"""Tests for the PRIME layout reconstruction and its published properties."""

import pytest

from repro.core.reconstruction import reconstruction_deviation
from repro.errors import ConfigurationError
from repro.layouts.prime import PrimeLayout
from repro.layouts.properties import check_layout


class TestStructure:
    def test_dimensions(self):
        lay = PrimeLayout(13, 4)
        assert lay.sections == 12
        assert lay.period == 48
        assert lay.stripes_per_period == 156

    def test_needs_prime_n(self):
        with pytest.raises(ConfigurationError):
            PrimeLayout(12, 4)

    def test_needs_k_below_n(self):
        with pytest.raises(ConfigurationError):
            PrimeLayout(13, 13)

    @pytest.mark.parametrize("n,k", [(5, 2), (7, 3), (13, 4), (11, 5)])
    def test_validates(self, n, k):
        PrimeLayout(n, k).validate()


class TestProperties:
    """The properties the PDDL paper relies on for its PRIME comparison."""

    def test_goal_profile(self):
        report = check_layout(PrimeLayout(13, 4))
        met = report.goals_met()
        for goal in (1, 2, 3, 4, 6):
            assert goal in met

    def test_distributed_parity_exact(self):
        lay = PrimeLayout(13, 4)
        counts = [0] * 13
        for s in range(lay.stripes_per_period):
            counts[lay.stripe_units_in_period(s).check[0].disk] += 1
        assert set(counts) == {12}  # one per section

    def test_reconstruction_exactly_distributed(self):
        assert reconstruction_deviation(PrimeLayout(13, 4)) == 0
        assert reconstruction_deviation(PrimeLayout(7, 3)) == 0

    def test_near_maximal_parallelism_within_sections(self):
        # Away from section boundaries a read of n contiguous data units
        # touches all n disks.
        lay = PrimeLayout(13, 4)
        per_section = lay.n * (lay.k - 1)
        for start in range(0, per_section - lay.n):
            disks = {
                lay.data_unit_address(start + i).disk for i in range(lay.n)
            }
            assert len(disks) == lay.n

    def test_average_working_set_near_raid5(self):
        # Including boundary starts, the mean working set of an n-unit
        # read deviates from maximal by less than one disk.
        lay = PrimeLayout(13, 4)
        total = 0
        count = lay.data_units_per_period
        for start in range(count):
            total += len(
                {lay.data_unit_address(start + i).disk for i in range(lay.n)}
            )
        assert total / count > lay.n - 1

    def test_tableless(self):
        assert PrimeLayout(13, 4).mapping_table_entries() == 0
