"""Tests for the layout registry."""

import pytest

from repro.errors import ConfigurationError
from repro.layouts.registry import DISPLAY_NAMES, available_layouts, make_layout


class TestRegistry:
    def test_all_names_buildable(self):
        shapes = {"raid5": (13, 13)}
        for name in available_layouts():
            n, k = shapes.get(name, (13, 4))
            layout = make_layout(name, n, k)
            layout.validate()

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_layout("raid6", 13, 4)

    def test_aliases_and_case(self):
        assert make_layout("RAID-5", 13, 13).name == "RAID-5"
        assert make_layout("PDDL", 13, 4).name == "PDDL"

    def test_pddl_requires_g_k_shape(self):
        with pytest.raises(ConfigurationError):
            make_layout("pddl", 12, 4)

    def test_display_names_cover_registry(self):
        for name in available_layouts():
            assert name in DISPLAY_NAMES
