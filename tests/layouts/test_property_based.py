"""Property-based invariants over randomly drawn layout configurations."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.array.raidops import ArrayMode, plan_access
from repro.core.bose import bose_base_permutation
from repro.core.layout import PDDLLayout
from repro.gf.prime import is_prime
from repro.layouts.address import Role
from repro.layouts.datum import DatumLayout
from repro.layouts.parity_decluster import ParityDeclusteringLayout
from repro.layouts.prime import PrimeLayout
from repro.layouts.pseudorandom import PseudoRandomLayout
from repro.layouts.raid5 import LeftSymmetricRaid5Layout

# Precomputed pool of valid configurations across all layout families.
_POOL = []
for _n, _k in [(5, 2), (7, 2), (7, 3), (11, 2), (13, 3), (13, 4), (13, 6)]:
    if is_prime(_n):
        _POOL.append(PrimeLayout(_n, _k))
    if (_n - 1) % _k == 0:
        _POOL.append(PDDLLayout(bose_base_permutation((_n - 1) // _k, _k)))
    _POOL.append(DatumLayout(_n, _k))
_POOL.append(LeftSymmetricRaid5Layout(5))
_POOL.append(LeftSymmetricRaid5Layout(13))
_POOL.append(ParityDeclusteringLayout(7, 3))
_POOL.append(ParityDeclusteringLayout(13, 4))
_POOL.append(PseudoRandomLayout(13, 4, rows=24, seed=9))

layouts = st.sampled_from(_POOL)


@pytest.mark.parametrize("layout", _POOL, ids=lambda l: l.describe())
def test_pool_layouts_validate(layout):
    layout.validate()


@given(layouts, st.integers(min_value=0, max_value=10_000))
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_data_unit_roundtrip(layout, unit):
    unit %= layout.data_units_per_period * 3
    addr = layout.data_unit_address(unit)
    info = layout.locate(*addr)
    assert info.role is Role.DATA
    assert info.stripe == layout.stripe_of_data_unit(unit)
    assert layout.stripe_units(info.stripe).data[info.position] == addr


@given(layouts, st.integers(min_value=0, max_value=10_000))
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_stripe_units_distinct_disks(layout, stripe):
    stripe %= layout.stripes_per_period * 2
    disks = layout.stripe_units(stripe).disks()
    assert len(set(disks)) == len(disks) == layout.k


@given(
    layouts,
    st.integers(min_value=0, max_value=5_000),
    st.integers(min_value=1, max_value=30),
    st.booleans(),
)
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_fault_free_plan_conservation(layout, start, count, is_write):
    start %= layout.data_units_per_period
    plan = plan_access(layout, start, count, is_write)
    expected_cells = {
        layout.data_unit_address(u) for u in range(start, start + count)
    }
    if is_write:
        writes = {
            (op.disk, op.offset)
            for op in plan.all_ops()
            if op.is_write
        }
        # every accessed data unit is written exactly once
        assert {tuple(c) for c in expected_cells} <= writes
        # and every op addresses a real cell
        for op in plan.all_ops():
            assert layout.locate(op.disk, op.offset) is not None
    else:
        cells = {(op.disk, op.offset) for op in plan.all_ops()}
        assert cells == {tuple(c) for c in expected_cells}


@given(
    layouts,
    st.integers(min_value=0, max_value=5_000),
    st.integers(min_value=1, max_value=20),
    st.booleans(),
    st.integers(min_value=0, max_value=12),
)
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_degraded_plan_avoids_failed_disk(
    layout, start, count, is_write, failed
):
    failed %= layout.n
    start %= layout.data_units_per_period
    plan = plan_access(
        layout, start, count, is_write,
        mode=ArrayMode.DEGRADED, failed_disk=failed,
    )
    assert all(op.disk != failed for op in plan.all_ops())


@given(
    st.sampled_from([l for l in _POOL if l.has_sparing]),
    st.integers(min_value=0, max_value=5_000),
    st.integers(min_value=1, max_value=20),
    st.booleans(),
    st.integers(min_value=0, max_value=12),
)
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_post_reconstruction_plan_avoids_failed_disk(
    layout, start, count, is_write, failed
):
    failed %= layout.n
    start %= layout.data_units_per_period
    plan = plan_access(
        layout, start, count, is_write,
        mode=ArrayMode.POST_RECONSTRUCTION, failed_disk=failed,
    )
    assert all(op.disk != failed for op in plan.all_ops())
    # Post-reconstruction reads are one op per unit, like fault-free.
    if not is_write:
        assert plan.operation_count() == count
