"""Registry-wide property test: flat fast-path tables == dict reference.

``Layout.locate`` and ``Layout.data_unit_address`` were rewritten to
index flat per-period tables (see the module docstring of
``src/repro/layouts/base.py``); the original dict-keyed implementations
survive as ``locate_reference`` / ``data_unit_address_reference``.  This
test pins the two paths cell-for-cell equal for *every* registered
layout, across multiple periods, including the error cases — so any new
layout added to the registry is automatically held to the same contract.
"""

import pytest

from repro.errors import MappingError
from repro.layouts.address import Role
from repro.layouts.registry import available_layouts, make_layout

#: Canonical (n, k) per layout; the paper's 13-disk array, stripe width
#: 4 for the declustered schemes (PDDL needs n = g*k + 1) and the whole
#: array for RAID-5.
_CONFIGS = {"raid5": (13, 13)}
_DEFAULT_CONFIG = (13, 4)

#: How far past the first period to check (in periods).
_PERIODS = 2.5


@pytest.fixture(params=available_layouts(), scope="module")
def layout(request):
    n, k = _CONFIGS.get(request.param, _DEFAULT_CONFIG)
    return make_layout(request.param, n, k)


def test_data_unit_address_matches_reference(layout):
    units = int(layout.data_units_per_period * _PERIODS)
    for unit in range(units):
        assert layout.data_unit_address(unit) == (
            layout.data_unit_address_reference(unit)
        ), f"{layout.name}: data unit {unit} diverged"


def test_locate_matches_reference(layout):
    offsets = int(layout.period * _PERIODS)
    for disk in range(layout.n):
        for offset in range(offsets):
            assert layout.locate(disk, offset) == (
                layout.locate_reference(disk, offset)
            ), f"{layout.name}: cell ({disk}, {offset}) diverged"


def test_locate_roundtrips_data_units(layout):
    """Forward map and inverse map agree through the fast path."""
    for unit in range(layout.data_units_per_period * 2):
        addr = layout.data_unit_address(unit)
        info = layout.locate(*addr)
        assert info.role is Role.DATA
        assert info.stripe == layout.stripe_of_data_unit(unit)
        assert info.position == unit % layout.data_per_stripe


def test_error_cases_match_reference(layout):
    for call in (layout.data_unit_address, layout.data_unit_address_reference):
        with pytest.raises(MappingError):
            call(-1)
    for disk, offset in ((-1, 0), (layout.n, 0), (0, -1)):
        for call in (layout.locate, layout.locate_reference):
            with pytest.raises(MappingError):
                call(disk, offset)


def test_data_unit_cell_is_address_core(layout):
    """The tuple-returning hot-path variant equals the address path."""
    for unit in range(layout.data_units_per_period + 3):
        addr = layout.data_unit_address(unit)
        assert layout.data_unit_cell(unit) == (addr.disk, addr.offset)
