"""Tests for left-symmetric RAID-5."""

import pytest

from repro.errors import ConfigurationError
from repro.layouts.properties import check_layout
from repro.layouts.raid5 import LeftSymmetricRaid5Layout


class TestLeftSymmetric:
    def test_parity_rotates_right_to_left(self):
        lay = LeftSymmetricRaid5Layout(5)
        parity_disks = [
            lay.stripe_units_in_period(s).check[0].disk for s in range(5)
        ]
        assert parity_disks == [4, 3, 2, 1, 0]

    def test_consecutive_data_on_consecutive_disks(self):
        lay = LeftSymmetricRaid5Layout(5)
        disks = [lay.data_unit_address(u).disk for u in range(20)]
        for a, b in zip(disks, disks[1:]):
            assert b == (a + 1) % 5

    def test_k_defaults_to_n(self):
        lay = LeftSymmetricRaid5Layout(13)
        assert lay.k == 13
        assert lay.data_per_stripe == 12

    def test_explicit_k_must_match(self):
        with pytest.raises(ConfigurationError):
            LeftSymmetricRaid5Layout(13, k=4)

    def test_goals(self):
        report = check_layout(LeftSymmetricRaid5Layout(13))
        assert report.goals_met() == [1, 2, 3, 4, 5, 6]
        assert report.distributed_sparing is None

    def test_maximal_parallelism_every_offset(self):
        lay = LeftSymmetricRaid5Layout(7)
        for start in range(lay.data_units_per_period):
            disks = {lay.data_unit_address(start + i).disk for i in range(7)}
            assert len(disks) == 7
