"""Tests for the RELPR layout."""

import pytest

from repro.core.reconstruction import rebuild_read_tally
from repro.errors import ConfigurationError
from repro.layouts.prime import PrimeLayout
from repro.layouts.relpr import RelprLayout
from repro.layouts.properties import check_goal1, check_goal2, check_goal4


class TestStructure:
    @pytest.mark.parametrize("n,k", [(10, 4), (9, 3), (14, 4), (15, 3)])
    def test_validates_for_composite_n(self, n, k):
        lay = RelprLayout(n, k)
        lay.validate()
        assert check_goal1(lay).satisfied
        assert check_goal4(lay).satisfied

    def test_section_count_is_totient(self):
        assert RelprLayout(10, 4).sections == 4    # phi(10)
        assert RelprLayout(9, 3).sections == 6     # phi(9)
        assert RelprLayout(14, 4).sections == 6    # phi(14)

    def test_gcd_constraint(self):
        with pytest.raises(ConfigurationError):
            RelprLayout(10, 6)  # gcd(5, 10) = 5
        with pytest.raises(ConfigurationError):
            RelprLayout(9, 4)   # gcd(3, 9) = 3

    def test_k_below_n(self):
        with pytest.raises(ConfigurationError):
            RelprLayout(5, 5)

    def test_tableless(self):
        assert RelprLayout(10, 4).mapping_table_entries() == 0


class TestApproximateBalance:
    def test_parity_exactly_balanced(self):
        # One parity unit per disk per section.
        lay = RelprLayout(10, 4)
        assert check_goal2(lay).satisfied

    def test_reconstruction_approximately_balanced(self):
        # For composite n the multiplier differences z*delta only reach
        # residues sharing a divisor structure with n, so a given failure
        # can leave some survivor idle (e.g. disk 5 when disk 0 of 10
        # fails) — the price of generality the paper alludes to with
        # "near-optimal".  Aggregated over all failures, every disk
        # carries load and the imbalance stays bounded.
        lay = RelprLayout(10, 4)
        aggregate = {d: 0 for d in range(lay.n)}
        for failed in range(lay.n):
            tally = rebuild_read_tally(lay, failed)
            for d, v in tally.items():
                aggregate[d] += v
        assert all(v > 0 for v in aggregate.values())
        mean = sum(aggregate.values()) / len(aggregate)
        assert max(aggregate.values()) - min(aggregate.values()) <= mean

    def test_matches_prime_for_prime_n(self):
        # For prime n the multiplier set is all nonzero residues, so RELPR
        # degenerates to exactly our PRIME construction.
        relpr = RelprLayout(13, 4)
        prime = PrimeLayout(13, 4)
        assert relpr.period == prime.period
        for s in range(0, prime.stripes_per_period, 17):
            assert relpr.stripe_units_in_period(
                s
            ) == prime.stripe_units_in_period(s)


class TestParallelism:
    def test_near_maximal_within_sections(self):
        lay = RelprLayout(10, 4)
        per_section = lay.n * (lay.k - 1)
        for start in range(0, per_section - lay.n, 3):
            disks = {
                lay.data_unit_address(start + i).disk for i in range(lay.n)
            }
            assert len(disks) == lay.n
