"""RelocatedView: a completed spare relocation folded into the mapping."""

import pytest

from repro.core.reconstruction import rebuild_plan
from repro.errors import ConfigurationError, MappingError
from repro.layouts import make_layout
from repro.layouts.address import PhysicalAddress, Role
from repro.layouts.relocated import RelocatedView


@pytest.fixture(scope="module")
def base():
    return make_layout("pddl", 13, 4)


@pytest.fixture(scope="module")
def view(base):
    return RelocatedView(base, 0)


class TestConstruction:
    def test_requires_sparing(self):
        with pytest.raises(ConfigurationError):
            RelocatedView(make_layout("raid5", 13, 4), 0)

    def test_requires_disk_in_range(self, base):
        with pytest.raises(ConfigurationError):
            RelocatedView(base, 13)
        with pytest.raises(ConfigurationError):
            RelocatedView(base, -1)

    def test_geometry_is_delegated(self, base, view):
        assert view.n == base.n
        assert view.k == base.k
        assert view.period == base.period
        assert view.stripes_per_period == base.stripes_per_period
        assert view.data_units_per_period == base.data_units_per_period

    def test_sparing_is_spent(self, view):
        assert view.has_sparing is False
        assert view.spare_addresses_in_period() == []
        with pytest.raises(MappingError):
            view.relocation_target(PhysicalAddress(1, 0))


class TestForwardMapping:
    def test_every_data_unit_lives_off_the_relocated_disk(self, base, view):
        for unit in range(base.data_units_per_period):
            addr = view.data_unit_address(unit)
            assert addr.disk != 0, unit
            base_addr = base.data_unit_address(unit)
            if base_addr.disk == 0:
                # Relocated unit: its new home is the base spare target.
                assert addr == base.relocation_target(base_addr)
            else:
                assert addr == base_addr

    def test_stripe_members_avoid_the_relocated_disk(self, base, view):
        for stripe in range(base.stripes_per_period):
            members = view.stripe_units(stripe).all_units()
            assert all(a.disk != 0 for a in members), stripe
            # Same multiset of units, just redirected.
            assert len(members) == len(
                base.stripe_units(stripe).all_units()
            )


class TestInverseMapping:
    def test_relocated_disk_is_unaddressable(self, view):
        with pytest.raises(MappingError):
            view.locate(0, 0)

    def test_round_trips_through_data_units(self, base, view):
        for unit in range(base.data_units_per_period):
            addr = view.data_unit_address(unit)
            info = view.locate(addr.disk, addr.offset)
            assert info.role is Role.DATA
            assert (
                view.data_units_of_stripe(info.stripe)[info.position]
                == unit
            ), unit

    def test_spare_cells_resolve_to_relocated_units(self, base, view):
        for spare in base.spare_addresses_in_period():
            if spare.disk == 0:
                continue
            info = view.locate(spare.disk, spare.offset)
            # The cell now holds whatever disk 0 relocated into it.
            assert info.role is not Role.SPARE
            src = base.locate(0, spare.offset % base.period)
            assert info.role is src.role

    def test_later_cycles_shift_with_the_period(self, base, view):
        period = base.period
        for disk in range(1, view.n):
            a = view.locate(disk, 3)
            b = view.locate(disk, 3 + period)
            assert a.role is b.role
            assert a.stripe + view.stripes_per_period == b.stripe


class TestRebuildPlanning:
    def test_second_failure_plan_avoids_both_dead_disks(self, base, view):
        # A replacement-spindle rebuild of a second casualty planned
        # against the view: reads come from live spindles only.
        for second in (1, 6, 12):
            steps = list(rebuild_plan(view, second, rows=base.period))
            assert steps
            for step in steps:
                assert step.write is None  # no spare space left
                for addr in step.reads:
                    assert addr.disk != 0, step
                    assert addr.disk != second, step

    def test_every_row_of_the_second_disk_is_planned(self, base, view):
        # With the spare diagonal consumed by real data, no row of the
        # second disk is skippable as "spare" unless it is still empty.
        second = 4
        planned = {
            s.lost.offset for s in rebuild_plan(view, second, rows=13)
        }
        empty = {
            offset
            for offset in range(13)
            if (second, offset) not in view._spare_source
            and base.locate(second, offset).role is Role.SPARE
        }
        assert planned == set(range(13)) - empty
