"""Tests for the shared Layout machinery (via concrete layouts)."""

import pytest

from repro.errors import ConfigurationError, MappingError
from repro.layouts import make_layout
from repro.layouts.address import PhysicalAddress, Role
from repro.layouts.raid5 import LeftSymmetricRaid5Layout


@pytest.fixture(scope="module")
def raid5():
    return LeftSymmetricRaid5Layout(5)


class TestGlobalAddressing:
    def test_period_extension(self, raid5):
        base = raid5.stripe_units_in_period(0)
        extended = raid5.stripe_units(0 + raid5.stripes_per_period)
        assert [a.disk for a in extended.data] == [a.disk for a in base.data]
        assert all(
            e.offset == b.offset + raid5.period
            for e, b in zip(extended.data, base.data)
        )

    def test_negative_stripe_rejected(self, raid5):
        with pytest.raises(MappingError):
            raid5.stripe_units(-1)

    def test_data_unit_roundtrip(self, raid5):
        for unit in range(raid5.data_units_per_period * 3):
            addr = raid5.data_unit_address(unit)
            info = raid5.locate(*addr)
            assert info.role is Role.DATA
            assert info.stripe == raid5.stripe_of_data_unit(unit)
            assert info.position == unit % raid5.data_per_stripe

    def test_negative_unit_rejected(self, raid5):
        with pytest.raises(MappingError):
            raid5.data_unit_address(-1)

    def test_data_units_of_stripe_inverse(self, raid5):
        for s in range(raid5.stripes_per_period):
            for unit in raid5.data_units_of_stripe(s):
                assert raid5.stripe_of_data_unit(unit) == s


class TestLocate:
    def test_every_cell_resolves(self, raid5):
        for disk in range(raid5.n):
            for offset in range(raid5.period * 2):
                info = raid5.locate(disk, offset)
                assert info.role in (Role.DATA, Role.CHECK)

    def test_bad_cell_rejected(self, raid5):
        with pytest.raises(MappingError):
            raid5.locate(5, 0)
        with pytest.raises(MappingError):
            raid5.locate(0, -1)

    def test_locate_agrees_with_forward_map(self, raid5):
        for s in range(raid5.stripes_per_period):
            units = raid5.stripe_units_in_period(s)
            for addr in units.check:
                assert raid5.locate(*addr).role is Role.CHECK


class TestConstructionErrors:
    def test_k_too_small(self):
        with pytest.raises(ConfigurationError):
            LeftSymmetricRaid5Layout(1)

    def test_relocation_without_sparing(self, raid5):
        with pytest.raises(MappingError):
            raid5.relocation_target(PhysicalAddress(0, 0))


class TestOverheads:
    def test_raid5_parity_fraction(self):
        # Paper §4: RAID-5 uses 7.7% of 13 disks for parity.
        lay = make_layout("raid5", 13, 13)
        assert lay.parity_overhead == pytest.approx(1 / 13)
        assert lay.spare_overhead == 0

    def test_declustered_parity_fraction(self):
        # PRIME/DATUM/Parity Declustering: 25% with k = 4.
        for name in ("prime", "datum", "parity-declustering"):
            lay = make_layout(name, 13, 4)
            assert lay.parity_overhead == pytest.approx(0.25), name

    def test_pddl_overheads(self):
        # PDDL: 23.1% parity + 7.7% spare.
        lay = make_layout("pddl", 13, 4)
        assert lay.parity_overhead == pytest.approx(3 / 13)
        assert lay.spare_overhead == pytest.approx(1 / 13)
