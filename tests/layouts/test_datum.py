"""Tests for the DATUM layout and its binomial addressing."""

from itertools import combinations
from math import comb

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, MappingError
from repro.layouts.datum import (
    DatumLayout,
    colex_count_containing,
    colex_rank,
    colex_unrank,
)
from repro.layouts.properties import check_layout


class TestColexMachinery:
    @pytest.mark.parametrize("n,k", [(6, 2), (7, 3), (8, 4), (10, 3)])
    def test_rank_unrank_roundtrip(self, n, k):
        blocks = sorted(combinations(range(n), k), key=lambda b: b[::-1])
        for s, block in enumerate(blocks):
            assert colex_rank(block) == s
            assert colex_unrank(s, k) == block

    def test_negative_rank(self):
        with pytest.raises(MappingError):
            colex_unrank(-1, 3)

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=12),
    )
    def test_count_containing_matches_bruteforce(self, k, rank, disk):
        brute = sum(1 for s in range(rank) if disk in colex_unrank(s, k))
        assert colex_count_containing(disk, rank, k) == brute


class TestDatumLayout:
    def test_dimensions(self):
        lay = DatumLayout(13, 4)
        assert lay.stripes_per_period == comb(13, 4)
        assert lay.period == comb(12, 3)

    def test_rejects_k_equal_n(self):
        with pytest.raises(ConfigurationError):
            DatumLayout(5, 5)

    def test_validates(self):
        DatumLayout(13, 4).validate()
        DatumLayout(7, 3).validate()

    def test_offsets_are_occurrence_counts(self):
        lay = DatumLayout(7, 3)
        seen = [0] * 7
        for s in range(lay.stripes_per_period):
            units = lay.stripe_units_in_period(s)
            for addr in units.all_units():
                assert addr.offset == seen[addr.disk]
                seen[addr.disk] += 1
        assert set(seen) == {lay.period}

    def test_goal_profile(self):
        # Paper: DATUM meets 1,2,3,4,6 but neither #5 nor sparing goals.
        # (10, 3): C(10,3) = 120 is divisible by 10, so parity balances
        # exactly.
        report = check_layout(DatumLayout(10, 3))
        assert report.goals_met() == [1, 2, 3, 4, 6]

    def test_parity_near_balanced_when_indivisible(self):
        # C(9,3) = 84 is not a multiple of 9; the best possible check
        # imbalance is 1 and the layout must achieve it.
        report = check_layout(DatumLayout(9, 3))
        assert report.distributed_parity.deviation <= 1

    def test_parity_exactly_balanced_for_paper_config(self):
        lay = DatumLayout(13, 4)
        counts = [0] * 13
        for s in range(lay.stripes_per_period):
            counts[lay.stripe_units_in_period(s).check[0].disk] += 1
        assert set(counts) == {comb(13, 4) // 13}

    def test_smallest_working_set(self):
        # Adjacent colex stripes overlap in k-1 disks, so a 2-stripe read
        # touches at most k+1 disks — far below RAID-5's behaviour.
        lay = DatumLayout(13, 4)
        span = 2 * lay.data_per_stripe
        worst = max(
            len({lay.data_unit_address(s + i).disk for i in range(span)})
            for s in range(0, 200)
        )
        assert worst <= lay.k + 2

    def test_mapping_is_tableless(self):
        assert DatumLayout(13, 4).mapping_table_entries() == 0
