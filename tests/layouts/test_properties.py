"""Tests for the goal checker itself, and the paper's goal matrix."""

import pytest

from repro.layouts import make_layout
from repro.layouts.properties import check_layout


@pytest.fixture(scope="module")
def reports():
    configs = {
        "pddl": (13, 4),
        "raid5": (13, 13),
        "datum": (13, 4),
        "prime": (13, 4),
        "parity-declustering": (13, 4),
    }
    return {
        name: check_layout(make_layout(name, n, k))
        for name, (n, k) in configs.items()
    }


class TestPaperGoalMatrix:
    """§5: 'PDDL does meet our goals #1, #2, #3, #4, #6, and #7, but PDDL
    does not satisfy the maximal read parallelism goal #5.  However, PDDL
    does meet goal #8 for super stripes.'"""

    def test_pddl(self, reports):
        met = reports["pddl"].goals_met()
        assert met == [1, 2, 3, 4, 6, 7, 8]
        assert not reports["pddl"].maximal_read_parallelism.satisfied

    def test_raid5_meets_goal5_optimally(self, reports):
        assert reports["raid5"].maximal_read_parallelism.satisfied
        assert reports["raid5"].maximal_read_parallelism.deviation == 0

    def test_datum_and_parity_declustering_miss_goal5(self, reports):
        assert not reports["datum"].maximal_read_parallelism.satisfied
        assert not reports[
            "parity-declustering"
        ].maximal_read_parallelism.satisfied

    def test_all_layouts_single_failure_correcting(self, reports):
        for name, report in reports.items():
            assert report.single_failure_correcting.satisfied, name

    def test_all_layouts_distribute_parity(self, reports):
        for name, report in reports.items():
            assert report.distributed_parity.satisfied, name

    def test_all_layouts_distribute_reconstruction(self, reports):
        for name, report in reports.items():
            assert report.distributed_reconstruction.satisfied, name

    def test_only_pddl_has_sparing(self, reports):
        assert reports["pddl"].distributed_sparing is not None
        assert reports["pddl"].distributed_sparing.satisfied
        for name in ("raid5", "datum", "prime", "parity-declustering"):
            assert reports[name].distributed_sparing is None


class TestCheckerMechanics:
    def test_unsatisfactory_permutation_flagged(self):
        from repro.core.layout import PDDLLayout
        from repro.core.permutation import identity_permutation

        report = check_layout(PDDLLayout(identity_permutation(2, 3)))
        assert not report.distributed_reconstruction.satisfied
        assert report.distributed_reconstruction.deviation > 0

    def test_goal_results_carry_detail(self, reports):
        for report in reports.values():
            assert report.efficient_mapping.detail

    def test_goal6_reports_table_entries(self, reports):
        assert reports["pddl"].efficient_mapping.deviation == 13  # p*n
        assert reports["datum"].efficient_mapping.deviation == 0
        assert reports["parity-declustering"].efficient_mapping.deviation == 52
