"""Tests for the Parity Declustering layout."""

import pytest

from repro.core.reconstruction import rebuild_read_tally
from repro.designs.catalog import known_bibd
from repro.errors import ConfigurationError
from repro.layouts.parity_decluster import ParityDeclusteringLayout
from repro.layouts.properties import check_layout


class TestStructure:
    def test_paper_configuration(self):
        lay = ParityDeclusteringLayout(13, 4)
        # Period = k(n-1)/(k-1) = 16 (Table 3).
        assert lay.period == 16
        assert lay.stripes_per_period == 52
        lay.validate()

    def test_table_size_matches_table3(self):
        # n(n-1)/(k-1) entries.
        lay = ParityDeclusteringLayout(13, 4)
        assert lay.mapping_table_entries() == 13 * 12 // 3

    def test_explicit_design(self):
        design = known_bibd(7, 3)
        lay = ParityDeclusteringLayout(7, 3, design=design)
        lay.validate()

    def test_mismatched_design_rejected(self):
        design = known_bibd(7, 3)
        with pytest.raises(ConfigurationError):
            ParityDeclusteringLayout(13, 4, design=design)


class TestProperties:
    def test_goal_profile(self):
        # Parity Declustering meets 1,2,3,4,6 but not #5 and has no sparing.
        report = check_layout(ParityDeclusteringLayout(13, 4))
        assert report.goals_met() == [1, 2, 3, 4, 6]
        assert report.distributed_sparing is None

    def test_parity_rotation_balances_checks(self):
        lay = ParityDeclusteringLayout(13, 4)
        counts = [0] * 13
        for s in range(lay.stripes_per_period):
            counts[lay.stripe_units_in_period(s).check[0].disk] += 1
        assert len(set(counts)) == 1

    def test_reconstruction_balanced(self):
        tally = rebuild_read_tally(ParityDeclusteringLayout(13, 4), 5)
        assert len(set(tally.values())) == 1

    def test_offsets_stack_contiguously(self):
        lay = ParityDeclusteringLayout(7, 3)
        seen = {d: set() for d in range(7)}
        for s in range(lay.stripes_per_period):
            for addr in lay.stripe_units_in_period(s).all_units():
                seen[addr.disk].add(addr.offset)
        for d in range(7):
            assert seen[d] == set(range(lay.period))
