"""Tests for the Pseudo-Random layout."""

import pytest

from repro.errors import ConfigurationError, MappingError
from repro.layouts.address import PhysicalAddress, Role
from repro.layouts.pseudorandom import PseudoRandomLayout


class TestStructure:
    def test_validates(self):
        PseudoRandomLayout(13, 4, rows=32, seed=1).validate()

    def test_deterministic_for_seed(self):
        a = PseudoRandomLayout(13, 4, rows=16, seed=5)
        b = PseudoRandomLayout(13, 4, rows=16, seed=5)
        for s in range(a.stripes_per_period):
            assert a.stripe_units_in_period(s) == b.stripe_units_in_period(s)

    def test_different_seeds_differ(self):
        a = PseudoRandomLayout(13, 4, rows=16, seed=5)
        b = PseudoRandomLayout(13, 4, rows=16, seed=6)
        assert any(
            a.stripe_units_in_period(s) != b.stripe_units_in_period(s)
            for s in range(a.stripes_per_period)
        )

    def test_rows_differ_from_each_other(self):
        lay = PseudoRandomLayout(13, 4, rows=8, seed=0)
        rows = {
            tuple(lay.stripe_units_in_period(r * lay.g).disks())
            for r in range(8)
        }
        assert len(rows) > 1

    def test_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            PseudoRandomLayout(13, 4, spares=2)  # 11 % 4 != 0
        with pytest.raises(ConfigurationError):
            PseudoRandomLayout(13, 4, spares=-1)
        with pytest.raises(ConfigurationError):
            PseudoRandomLayout(13, 4, rows=0)

    def test_no_spares_variant(self):
        lay = PseudoRandomLayout(12, 4, spares=0, rows=8)
        lay.validate()
        assert lay.spare_addresses_in_period() == []
        with pytest.raises(MappingError):
            lay.relocation_target(PhysicalAddress(0, 0))


class TestStatisticalBalance:
    def test_parity_roughly_even(self):
        lay = PseudoRandomLayout(13, 4, rows=512, seed=3)
        counts = [0] * 13
        for s in range(lay.stripes_per_period):
            counts[lay.stripe_units_in_period(s).check[0].disk] += 1
        expected = lay.stripes_per_period / 13
        assert all(0.6 * expected < c < 1.4 * expected for c in counts)

    def test_relocation_lands_on_spare(self):
        lay = PseudoRandomLayout(13, 4, rows=16, seed=2)
        addr = lay.stripe_units_in_period(0).data[0]
        target = lay.relocation_target(addr)
        assert lay.locate(*target).role is Role.SPARE

    def test_relocating_spare_rejected(self):
        lay = PseudoRandomLayout(13, 4, rows=16, seed=2)
        spare = lay.spare_addresses_in_period()[0]
        with pytest.raises(MappingError):
            lay.relocation_target(spare)
