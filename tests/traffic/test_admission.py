"""Admission queue and overload detector semantics."""

import pytest

from repro.array.controller import LogicalAccess
from repro.errors import ConfigurationError
from repro.sim.engine import SimulationEngine
from repro.sim.instrument import DepthTimeline
from repro.traffic.admission import AdmissionQueue, OverloadDetector


class StubController:
    """Fixed-service-time array: completes each access after ``service_ms``."""

    def __init__(self, engine, service_ms=10.0):
        self.engine = engine
        self.service_ms = service_ms

    def submit(self, access, on_complete):
        self.engine.schedule(
            self.service_ms, lambda: on_complete(access, self.service_ms)
        )


def access(i):
    return LogicalAccess(
        access_id=i, first_unit=i, unit_count=1, is_write=False
    )


def harness(depth=2, slots=1, service_ms=10.0):
    engine = SimulationEngine()
    responses = []
    queue = AdmissionQueue(
        StubController(engine, service_ms),
        lambda a, total, wait: responses.append((a.access_id, total, wait)),
        depth=depth,
        service_slots=slots,
        timeline=DepthTimeline(),
    )
    return engine, queue, responses


class TestAdmissionQueue:
    def test_serves_immediately_when_slots_free(self):
        engine, queue, responses = harness(slots=2)
        assert queue.offer(access(0))
        assert queue.offer(access(1))
        assert queue.in_service == 2
        assert queue.waiting == 0
        engine.run()
        assert [r[0] for r in responses] == [0, 1]
        assert all(wait == 0.0 for _, _, wait in responses)

    def test_sheds_beyond_depth_and_accounts_for_it(self):
        engine, queue, responses = harness(depth=2, slots=1)
        admitted = [queue.offer(access(i)) for i in range(5)]
        # 1 in service, 2 waiting, 2 shed.
        assert admitted == [True, True, True, False, False]
        stats = queue.stats()
        assert stats["offered"] == 5
        assert stats["admitted"] == 3
        assert stats["shed"] == 2
        engine.run()
        assert queue.stats()["completed"] == 3
        assert queue.stats()["completed"] + stats["shed"] == 5

    def test_fifo_order_and_admission_wait_in_latency(self):
        engine, queue, responses = harness(depth=8, slots=1, service_ms=10.0)
        for i in range(3):
            queue.offer(access(i))
        engine.run()
        assert [r[0] for r in responses] == [0, 1, 2]
        # Offer-to-completion latency includes the queue wait.
        assert [r[1] for r in responses] == [10.0, 20.0, 30.0]
        assert [r[2] for r in responses] == [0.0, 10.0, 20.0]
        assert queue.stats()["mean_wait_ms"] == pytest.approx(10.0)

    def test_no_head_of_line_bypass(self):
        """A free slot must go to the FIFO head, not a fresh arrival."""
        engine, queue, responses = harness(depth=8, slots=1)
        queue.offer(access(0))
        queue.offer(access(1))  # waits
        engine.schedule(15.0, lambda: queue.offer(access(2)))
        engine.run()
        assert [r[0] for r in responses] == [0, 1, 2]

    def test_queue_high_water(self):
        engine, queue, _ = harness(depth=8, slots=1)
        for i in range(5):
            queue.offer(access(i))
        assert queue.stats()["queue_high_water"] == 4
        engine.run()
        assert queue.waiting == 0

    def test_validation(self):
        engine = SimulationEngine()
        controller = StubController(engine)
        with pytest.raises(ConfigurationError):
            AdmissionQueue(controller, lambda *a: None, depth=0)
        with pytest.raises(ConfigurationError):
            AdmissionQueue(controller, lambda *a: None, service_slots=0)


class TestOverloadDetector:
    def test_sustained_growth_latches(self):
        detector = OverloadDetector(window_ms=100.0, windows=3)
        # Window minima: 1, 2, 3, 4 -> three growth windows in a row.
        for window, depth in enumerate([1, 2, 3, 4]):
            detector.sample(window * 100.0 + 50.0, depth)
        detector.sample(450.0, 4)  # close window 4
        report = detector.report()
        assert report["overloaded"] is True
        assert report["detected_at_ms"] == 400.0
        assert report["max_growth_streak"] >= 3

    def test_draining_queue_resets_the_streak(self):
        detector = OverloadDetector(window_ms=100.0, windows=3)
        # Grows twice, drains to zero, grows twice again: never 3 in a row.
        for window, depth in enumerate([1, 2, 3, 0, 1, 2]):
            detector.sample(window * 100.0 + 50.0, depth)
        detector.sample(650.0, 2)
        report = detector.report()
        assert report["overloaded"] is False
        assert report["detected_at_ms"] is None
        assert report["max_growth_streak"] == 2

    def test_plateau_is_not_growth(self):
        detector = OverloadDetector(window_ms=100.0, windows=2)
        for window, depth in enumerate([5, 5, 5, 5]):
            detector.sample(window * 100.0 + 50.0, depth)
        detector.sample(450.0, 5)
        assert detector.report()["overloaded"] is False

    def test_sampleless_windows_inherit_last_depth(self):
        detector = OverloadDetector(window_ms=100.0, windows=3)
        detector.sample(50.0, 2)
        # Jump far ahead: the empty windows in between hold depth 2
        # (no growth), so the streak must not fire.
        detector.sample(850.0, 3)
        detector.sample(950.0, 4)
        assert detector.report()["overloaded"] is False

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OverloadDetector(window_ms=0.0)
        with pytest.raises(ConfigurationError):
            OverloadDetector(windows=0)


class TestDepthTimeline:
    def test_coalesces_repeats_and_tracks_high_water(self):
        timeline = DepthTimeline()
        timeline.record(0.0, 1)
        timeline.record(1.0, 1)  # coalesced
        timeline.record(2.0, 3)
        timeline.record(3.0, 0)
        assert timeline.points == [[0.0, 1], [2.0, 3], [3.0, 0]]
        assert timeline.high_water == 3
        assert len(timeline) == 3
