"""SLO policies and time-in-violation accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.traffic.sla import SlaTracker, SloPolicy


class TestSloPolicy:
    def test_rejects_bad_ceilings(self):
        with pytest.raises(ConfigurationError):
            SloPolicy(p99_ms=0.0, p999_ms=10.0)
        with pytest.raises(ConfigurationError):
            SloPolicy(p99_ms=100.0, p999_ms=50.0)


class TestSlaTracker:
    def test_empty_report(self):
        tracker = SlaTracker(SloPolicy(p99_ms=50.0, p999_ms=100.0))
        report = tracker.report()
        assert report["tail"]["count"] == 0
        assert report["tail"]["p999_ms"] is None
        assert report["p99_violated"] is False
        assert report["p999_violated"] is False
        assert report["time_in_violation_ms"] == 0.0

    def test_tail_percentiles_and_max(self):
        tracker = SlaTracker(SloPolicy(p99_ms=500.0, p999_ms=900.0))
        for i in range(1, 1001):
            tracker.record(float(i), float(i))
        tail = tracker.report()["tail"]
        assert tail["count"] == 1000
        assert tail["p50_ms"] == pytest.approx(500.0, rel=0.06)
        assert tail["p99_ms"] == pytest.approx(990.0, rel=0.06)
        assert tail["p999_ms"] == pytest.approx(999.0, rel=0.06)
        assert tail["max_ms"] == 1000.0  # exact, not bucketed

    def test_violation_flags(self):
        tracker = SlaTracker(SloPolicy(p99_ms=10.0, p999_ms=2000.0))
        for i in range(1, 101):
            tracker.record(float(i), float(i))
        report = tracker.report()
        assert report["p99_violated"] is True  # p99 ~ 99 >> 10
        assert report["p999_violated"] is False  # max 100 << 2000

    def test_time_in_violation_counts_bad_windows_only(self):
        tracker = SlaTracker(
            SloPolicy(p99_ms=50.0, p999_ms=100.0), window_ms=100.0
        )
        # Window 0: 10 fast responses — healthy.
        for i in range(10):
            tracker.record(5.0 + i, 10.0)
        # Window 1: 10 responses, 3 over the ceiling — violating.
        for i in range(10):
            tracker.record(105.0 + i, 80.0 if i < 3 else 10.0)
        # Window 2: exactly 1% over (1 of 100) — NOT violating (> 1%).
        for i in range(100):
            tracker.record(205.0 + i / 200.0, 80.0 if i == 0 else 10.0)
        report = tracker.report()
        assert report["windows"] == 3
        assert report["violation_windows"] == 1
        assert report["time_in_violation_ms"] == 100.0

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            SlaTracker(SloPolicy(p99_ms=1.0, p999_ms=1.0), window_ms=0.0)
