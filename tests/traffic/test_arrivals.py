"""Arrival processes: determinism, mean rates, validation, prefetch."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.traffic.arrivals import (
    DIURNAL_MULTIPLIERS,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
)


def _stream(process, n=500):
    return [process.next_delay_ms() for _ in range(n)]


def _mean_rate_per_s(delays):
    return 1000.0 * len(delays) / sum(delays)


class TestDeterminism:
    @pytest.mark.parametrize(
        "build",
        [
            lambda rng: PoissonArrivals(400.0, rng),
            lambda rng: MMPPArrivals.bursty(400.0, 6.0, 0.15, 120.0, rng),
            lambda rng: TraceArrivals.diurnal(400.0, 600.0, rng),
        ],
        ids=["poisson", "mmpp", "trace"],
    )
    def test_same_seed_same_stream(self, build):
        a = _stream(build(random.Random("7/arrivals")))
        b = _stream(build(random.Random("7/arrivals")))
        assert a == b

    def test_different_seeds_differ(self):
        a = _stream(PoissonArrivals(400.0, random.Random("1/arrivals")))
        b = _stream(PoissonArrivals(400.0, random.Random("2/arrivals")))
        assert a != b


class TestRates:
    def test_poisson_mean_matches_rate(self):
        delays = _stream(
            PoissonArrivals(500.0, random.Random("rate")), 4000
        )
        assert _mean_rate_per_s(delays) == pytest.approx(500.0, rel=0.1)

    def test_mmpp_long_run_average_matches_offered_rate(self):
        process = MMPPArrivals.bursty(
            500.0, 8.0, 0.2, 100.0, random.Random("mmpp")
        )
        delays = _stream(process, 20000)
        assert _mean_rate_per_s(delays) == pytest.approx(500.0, rel=0.1)

    def test_mmpp_is_burstier_than_poisson(self):
        """Squared coefficient of variation: 1 for Poisson, above 1 for
        a modulated process — the defining property of MMPP."""

        def scv(delays):
            mean = sum(delays) / len(delays)
            var = sum((d - mean) ** 2 for d in delays) / len(delays)
            return var / (mean * mean)

        poisson = _stream(
            PoissonArrivals(400.0, random.Random("cv")), 20000
        )
        mmpp = _stream(
            MMPPArrivals.bursty(
                400.0, 10.0, 0.1, 200.0, random.Random("cv")
            ),
            20000,
        )
        assert scv(poisson) == pytest.approx(1.0, abs=0.2)
        assert scv(mmpp) > scv(poisson) + 0.3

    def test_trace_long_run_average_matches_offered_rate(self):
        assert sum(DIURNAL_MULTIPLIERS) / len(DIURNAL_MULTIPLIERS) == (
            pytest.approx(1.0)
        )
        process = TraceArrivals.diurnal(
            500.0, 600.0, random.Random("trace")
        )
        delays = _stream(process, 20000)
        assert _mean_rate_per_s(delays) == pytest.approx(500.0, rel=0.1)

    def test_trace_peak_segment_runs_hot(self):
        process = TraceArrivals(
            [(1000.0, 100.0), (1000.0, 1000.0)], random.Random("seg")
        )
        delays = _stream(process, 20000)
        # Arrivals inside the hot segment are 10x closer together.
        fast = sum(1 for d in delays if d < 5.0)
        assert fast > len(delays) / 2


#: Every arrival-process family the traffic layer ships, built the way
#: the open-loop runner builds them (one fresh named stream each).
_BUILDERS = [
    lambda rng: PoissonArrivals(400.0, rng),
    lambda rng: MMPPArrivals.bursty(400.0, 6.0, 0.15, 120.0, rng),
    lambda rng: TraceArrivals.diurnal(400.0, 600.0, rng),
]


class TestPrefetch:
    """Prefetching draws blocks ahead without perturbing the stream.

    The open-loop experiment prefetches a block of inter-arrival delays
    up front (the batched-executor fast path); the delays the trial
    then *consumes* must be byte-identical to a never-prefetched
    process with the same seed, for every arrival family and any
    interleaving of prefetch calls with consumption.
    """

    @settings(max_examples=60, deadline=None)
    @given(
        builder=st.sampled_from(_BUILDERS),
        seed=st.integers(0, 99),
        # Alternating plan: prefetch k_i, then consume n_i draws.
        plan=st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)),
            min_size=1,
            max_size=5,
        ),
    )
    def test_any_prefetch_interleaving_is_invisible(
        self, builder, seed, plan
    ):
        reference = builder(random.Random(f"{seed}/openloop-0"))
        prefetched = builder(random.Random(f"{seed}/openloop-0"))
        consumed = []
        expected = []
        for prefetch_count, consume_count in plan:
            prefetched.prefetch(prefetch_count)
            for _ in range(consume_count):
                consumed.append(prefetched.next_delay_ms())
                expected.append(reference.next_delay_ms())
        assert consumed == expected

    @pytest.mark.parametrize("builder", _BUILDERS)
    def test_prefetch_is_idempotent_on_buffered_draws(self, builder):
        process = builder(random.Random("pf"))
        process.prefetch(8)
        process.prefetch(4)  # already buffered: must not draw more
        reference = builder(random.Random("pf"))
        assert [process.next_delay_ms() for _ in range(12)] == [
            reference.next_delay_ms() for _ in range(12)
        ]

    def test_negative_prefetch_rejected(self):
        process = PoissonArrivals(400.0, random.Random(0))
        with pytest.raises(ConfigurationError):
            process.prefetch(-1)


class TestValidation:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0.0, random.Random(0))
        with pytest.raises(ConfigurationError):
            PoissonArrivals(-10.0, random.Random(0))

    def test_mmpp_needs_two_states(self):
        with pytest.raises(ConfigurationError):
            MMPPArrivals([400.0], [100.0], random.Random(0))

    def test_mmpp_needs_matching_dwells(self):
        with pytest.raises(ConfigurationError):
            MMPPArrivals([400.0, 800.0], [100.0], random.Random(0))

    def test_mmpp_needs_positive_dwells(self):
        with pytest.raises(ConfigurationError):
            MMPPArrivals([400.0, 800.0], [100.0, 0.0], random.Random(0))

    def test_bursty_envelope_validation(self):
        with pytest.raises(ConfigurationError):
            MMPPArrivals.bursty(400.0, 0.5, 0.15, 100.0, random.Random(0))
        with pytest.raises(ConfigurationError):
            MMPPArrivals.bursty(400.0, 6.0, 1.0, 100.0, random.Random(0))

    def test_trace_rejects_empty_and_bad_segments(self):
        with pytest.raises(ConfigurationError):
            TraceArrivals([], random.Random(0))
        with pytest.raises(ConfigurationError):
            TraceArrivals([(0.0, 400.0)], random.Random(0))
        with pytest.raises(ConfigurationError):
            TraceArrivals([(100.0, -1.0)], random.Random(0))
