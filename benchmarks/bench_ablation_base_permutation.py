"""Ablation — base permutation quality (the paper's §2 motivation).

Compares the satisfactory base permutation against the identity
permutation (0 1 2 ... n-1), which the paper shows spreads reconstruction
over only four disks instead of all survivors.  Expected: identical
fault-free behaviour (goal #3 only bites under failure), but visibly worse
degraded-mode tail load and a reconstruction-read tally concentrated on a
few disks.
"""

import random

from repro.array.controller import ArrayController
from repro.array.raidops import ArrayMode
from repro.core.layout import PDDLLayout
from repro.core.permutation import identity_permutation
from repro.core.reconstruction import rebuild_read_tally
from repro.core.tables import PAPER_N13_K4_EXPERIMENT
from repro.core.permutation import BasePermutation
from repro.experiments.report import render_table
from repro.sim.engine import SimulationEngine
from repro.stats.summary import SummaryStats
from repro.workload.client import ClosedLoopClient
from repro.workload.generators import UniformGenerator
from repro.workload.spec import AccessSpec


def _degraded_run(layout, samples, clients=15, seed=0):
    engine = SimulationEngine()
    controller = ArrayController(engine, layout)
    controller.fail_disk(0)
    stats = SummaryStats()

    def on_response(client, access, ms):
        stats.push(ms)
        if stats.count >= samples:
            engine.stop()
            return False
        return True

    for c in range(clients):
        gen = UniformGenerator(
            controller.addressable_data_units, 6,
            random.Random(f"{seed}/{c}"),
        )
        ClosedLoopClient(
            c, controller, gen, AccessSpec(48, False), on_response
        ).start()
    engine.run()
    busy = [s.stats.busy_ms for i, s in enumerate(controller.servers) if i]
    return stats.mean, max(busy) / (sum(busy) / len(busy))


def test_ablation_base_permutation_quality(benchmark, bench_samples):
    good = PDDLLayout(BasePermutation(PAPER_N13_K4_EXPERIMENT, k=4))
    bad = PDDLLayout(identity_permutation(3, 4))

    def run_all():
        return {
            "satisfactory": _degraded_run(good, bench_samples),
            "identity": _degraded_run(bad, bench_samples),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    good_tally = rebuild_read_tally(good, 0)
    bad_tally = rebuild_read_tally(bad, 0)

    print()
    print("Ablation: base permutation quality (degraded 48KB reads)")
    print(
        render_table(
            ["permutation", "mean response ms", "max/mean disk busy",
             "tally spread"],
            [
                [
                    name,
                    f"{mean:.2f}",
                    f"{imbalance:.3f}",
                    f"{max(t.values())}-{min(t.values())}",
                ]
                for (name, (mean, imbalance)), t in zip(
                    results.items(), [good_tally, bad_tally]
                )
            ],
        )
    )

    # The satisfactory permutation balances reconstruction reads exactly;
    # the identity concentrates them (paper: four disks, +50% on two).
    assert max(good_tally.values()) == min(good_tally.values())
    assert max(bad_tally.values()) > min(bad_tally.values())
    busy_disks = sum(1 for v in bad_tally.values() if v > 0)
    assert busy_disks < len(bad_tally)

    # Under degraded load the identity permutation is no better, and its
    # per-disk load is more skewed.
    good_mean, good_imbalance = results["satisfactory"]
    bad_mean, bad_imbalance = results["identity"]
    assert bad_imbalance >= good_imbalance * 0.98
