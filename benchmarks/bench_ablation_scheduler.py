"""Ablation — head scheduling policy (Table 2 fixes SSTF on 20 requests).

Varies what the paper holds constant: SSTF vs FIFO vs LOOK, and the SSTF
inspection window.  Expected: SSTF and LOOK beat FIFO under load (request
reordering is what makes the seek-heavy declustered layouts viable), and a
wider SSTF window helps at high concurrency.
"""

import random

from repro.array.controller import ArrayController
from repro.experiments.config import paper_layout
from repro.experiments.report import render_table
from repro.sim.engine import SimulationEngine
from repro.stats.summary import SummaryStats
from repro.workload.client import ClosedLoopClient
from repro.workload.generators import UniformGenerator
from repro.workload.spec import AccessSpec


def _run(scheduler_name, window, samples, clients=20, seed=0):
    engine = SimulationEngine()
    controller = ArrayController(
        engine,
        paper_layout("pddl"),
        scheduler_name=scheduler_name,
        scheduler_window=window,
    )
    stats = SummaryStats()

    def on_response(client, access, ms):
        stats.push(ms)
        if stats.count >= samples:
            engine.stop()
            return False
        return True

    for c in range(clients):
        gen = UniformGenerator(
            controller.addressable_data_units, 6,
            random.Random(f"{seed}/{c}"),
        )
        ClosedLoopClient(
            c, controller, gen, AccessSpec(48, False), on_response
        ).start()
    engine.run()
    return stats.mean


def test_ablation_scheduler_policy(benchmark, bench_samples):
    def run_all():
        return {
            ("sstf", 20): _run("sstf", 20, bench_samples),
            ("sstf", 4): _run("sstf", 4, bench_samples),
            ("fifo", 1): _run("fifo", 1, bench_samples),
            ("look", 1): _run("look", 1, bench_samples),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("Ablation: scheduler policy (PDDL, 48KB reads, 20 clients)")
    print(
        render_table(
            ["policy", "window", "mean response ms"],
            [
                [name, window, f"{ms:.2f}"]
                for (name, window), ms in results.items()
            ],
        )
    )

    fifo = results[("fifo", 1)]
    assert results[("sstf", 20)] < fifo
    assert results[("look", 1)] < fifo * 1.05
    # Wider SSTF window >= narrow window (never worse beyond noise).
    assert results[("sstf", 20)] <= results[("sstf", 4)] * 1.08
