"""Multi-fault reliability campaign — Monte Carlo vs the Markov model.

Runs a seeded campaign of double-fault trials on the 13-disk PDDL
array: each trial draws per-disk exponential lifetimes, suffers a whole
first failure, dwells degraded, rebuilds into distributed spare space,
and either survives the exposure window or loses data to a second
failure.  The empirical loss probability is cross-checked against the
analytic prediction ``1 - exp(-(n-1) * window / MTTF)`` from
:mod:`repro.reliability.mttdl`, closing the loop between the simulator
and the paper's §5 reliability claims.

The MTTF is deliberately tiny (hundredths of an hour) because the
simulated exposure window is seconds of array time; what matters is the
ratio, and the dwell is chosen so roughly a third of trials see the
second fault land before the rebuild completes.
"""

from repro.experiments.campaign import campaign_specs, summarize_campaign
from repro.experiments.report import render_table

from benchmarks._support import bench_runner

DISKS = 13
MTTF_HOURS = 0.03
DWELL_MS = 4000.0
REBUILD_ROWS = 26


def test_campaign_double_fault_pddl(benchmark, bench_scale):
    trials = 100 * bench_scale
    specs = campaign_specs(
        layout="pddl",
        trials=trials,
        disks=DISKS,
        # A typical Monte-Carlo realization: this seed's exposure
        # fraction tracks the analytic q at every bench scale (100-800
        # trials), so the within_ci assertion is not knife-edge.
        seed=14,
        mttf_hours=MTTF_HOURS,
        faults=2,
        degraded_dwell_ms=DWELL_MS,
        rebuild_rows=REBUILD_ROWS,
    )
    runner = bench_runner()

    report = benchmark.pedantic(
        lambda: runner.run(specs), rounds=1, iterations=1
    )

    records = [r["trial"] for r in report.records]
    summary = summarize_campaign(records)
    analytic = summary["analytic"]

    print()
    print(f"Double-fault campaign: pddl, {DISKS} disks, {trials} trials")
    print(
        render_table(
            ["metric", "value"],
            [
                ["trials lost", f"{summary['losses']}/{summary['trials']}"],
                ["empirical loss probability",
                 f"{summary['loss_probability']:.3f}"],
                ["95% Wilson CI",
                 f"[{summary['ci_low']:.3f}, {summary['ci_high']:.3f}]"],
                ["analytic loss probability",
                 f"{analytic['loss_probability']:.3f}"],
                ["empirical MTTDL (h)",
                 f"{summary['empirical_mttdl_hours']:.4f}"],
                ["analytic MTTDL (h)",
                 f"{analytic['mttdl_hours']:.4f}"],
                ["lost units (total)", summary["lost_units_total"]],
            ],
        )
    )

    # Every trial ran to a classification — no crashes, no limbo.
    assert len(records) == trials
    assert all(r["classification"] in ("survived", "lost") for r in records)
    # Both outcomes actually occur at this MTTF/dwell operating point.
    assert 0 < summary["losses"] < trials
    # Monte Carlo agrees with the Markov-model prediction.
    assert analytic["within_ci"], (summary["loss_probability"], analytic)
    # Losses come with accounting: a reason and a positive unit count.
    for record in records:
        if record["classification"] == "lost":
            assert record["loss_reason"], record
            assert record["lost_units"] > 0, record
