"""Figure 5 — Read response times, failure-free mode.

Regenerates the figure's series: response time vs measured throughput for
the five layouts, across access sizes and closed-loop client counts.
The sweep executes on :mod:`repro.runner` — ``REPRO_BENCH_WORKERS=N``
parallelizes the points bit-identically, ``REPRO_BENCH_CACHE=1`` reuses
previously simulated points (this figure's points seed the cache for
Figure 6's fault-free baseline).  Expected shape (paper §4.1):

- at 8 KB all layouts perform similarly;
- light load: PRIME and RAID-5 lead, PDDL next, DATUM trails;
- heavy load: the curves cross — DATUM becomes best, PDDL second.
"""

from repro.array.raidops import ArrayMode

from benchmarks._support import (
    final_response,
    first_response,
    run_figure_sweep,
)


def test_figure5_fault_free_reads(
    benchmark, bench_sizes_kb, bench_clients, bench_samples
):
    panels = benchmark.pedantic(
        run_figure_sweep,
        args=(
            bench_sizes_kb,
            False,
            bench_clients,
            bench_samples,
            ArrayMode.FAULT_FREE,
            "Figure 5",
        ),
        rounds=1,
        iterations=1,
    )

    # 8KB: performance is very similar for all layouts.
    small = panels[8]
    lights = [first_response(small, name) for name in small]
    assert max(lights) / min(lights) < 1.3

    for size in bench_sizes_kb:
        if size < 48:
            continue
        curves = panels[size]
        # Light load: PRIME beats DATUM and Parity Declustering; PDDL beats
        # DATUM.
        assert first_response(curves, "prime") < first_response(
            curves, "datum"
        )
        assert first_response(curves, "pddl") < first_response(
            curves, "datum"
        )
        # Heavy load: the crossover — DATUM ends up best or tied-best.
        finals = {name: final_response(curves, name) for name in curves}
        assert finals["datum"] <= min(finals.values()) * 1.05
        # PDDL is competitive at heavy load (within the top half).
        assert finals["pddl"] <= sorted(finals.values())[2] * 1.10
