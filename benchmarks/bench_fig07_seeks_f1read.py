"""Figure 7 — Degraded read: seek and no-switch counts.

Expected shape (paper §4.1): similar to the fault-free tallies (Figure 4)
with quantitative growth — on-the-fly reconstruction adds operations —
and RAID-5's totals grow the most (its surviving disks absorb the whole
failed disk's load).
"""

from repro.array.raidops import ArrayMode

from benchmarks._support import LAYOUTS, print_seek_panel


def test_figure7_degraded_read_seeks(
    benchmark, bench_seek_sizes_kb, bench_samples
):
    mixes = benchmark.pedantic(
        print_seek_panel,
        args=(
            "Figure 7: degraded read seek/no-switch counts per access",
            LAYOUTS,
            bench_seek_sizes_kb,
            False,
            ArrayMode.DEGRADED,
            bench_samples,
        ),
        rounds=1,
        iterations=1,
    )

    from repro.experiments.seeks import run_seek_mix

    clean = run_seek_mix(
        LAYOUTS,
        bench_seek_sizes_kb,
        False,
        mode=ArrayMode.FAULT_FREE,
        samples_per_point=bench_samples,
    )

    size = bench_seek_sizes_kb[-1]
    for name in LAYOUTS:
        # Reconstruction adds physical operations.
        assert mixes[(name, size)].total >= clean[(name, size)].total * 0.98
    # RAID-5 gains the most extra work per degraded access.
    gains = {
        name: mixes[(name, size)].total - clean[(name, size)].total
        for name in LAYOUTS
    }
    assert gains["raid5"] == max(gains.values())
