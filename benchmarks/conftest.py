"""Shared configuration for the figure/table reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
prints the reproduced rows/series.  Runs are bounded by default so the
full suite finishes in minutes; set ``REPRO_BENCH_SCALE`` (default 1) to
2-10 for paper-strength sample counts, and ``REPRO_BENCH_FULL=1`` to sweep
every access size and client count instead of the representative subsets.

Execution knobs (see RUNNER.md): ``REPRO_BENCH_WORKERS=N`` fans sweep
points across N processes with bit-identical results, and
``REPRO_BENCH_CACHE`` (``1`` or a directory) memoizes completed points
so repeated and overlapping sweeps skip simulation entirely.
"""

import os

import pytest


def _scale() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))


def _full() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def bench_scale() -> int:
    """Multiplier on per-point sample counts."""
    return _scale()


@pytest.fixture(scope="session")
def bench_samples(bench_scale) -> int:
    """Closed-loop samples per simulated point."""
    return 150 * bench_scale


@pytest.fixture(scope="session")
def bench_sizes_kb():
    """Access sizes for response-time figures."""
    if _full():
        return (8, 48, 96, 144, 192, 240)
    return (8, 48, 96, 240)


@pytest.fixture(scope="session")
def bench_clients():
    """Closed-loop client counts for response-time figures."""
    if _full():
        return (1, 2, 4, 8, 10, 15, 20, 25)
    return (1, 4, 10, 25)


@pytest.fixture(scope="session")
def bench_seek_sizes_kb():
    """Access sizes for the seek-mix figures (4, 7, 15, 16)."""
    if _full():
        return (8, 48, 96, 144, 192, 240, 288, 336)
    return (8, 48, 96, 192, 336)


LAYOUTS = ("datum", "parity-declustering", "raid5", "pddl", "prime")
