"""Figure 18 — PDDL reads: fault-free vs reconstruction vs
post-reconstruction.

Expected shape (paper appendix): for unit-sized accesses the
post-reconstruction response time is far better than reconstruction mode
(the spare copy is read directly instead of k-1 survivors) but worse than
fault-free (one fewer operational disk); for accesses much larger than a
stripe unit the two failure regimes converge.
"""

from repro.array.raidops import ArrayMode
from repro.experiments.response import run_response_curve
from repro.experiments.report import render_response_curves
from repro.workload.spec import AccessSpec

SIZES_KB = (8, 24, 48, 72)


def test_figure18_pddl_recovery_regimes(benchmark, bench_samples):
    clients = (1, 10, 25)

    def run_all():
        out = {}
        for size in SIZES_KB:
            for mode in (
                ArrayMode.FAULT_FREE,
                ArrayMode.DEGRADED,
                ArrayMode.POST_RECONSTRUCTION,
            ):
                curve = run_response_curve(
                    "pddl",
                    AccessSpec(size, False),
                    clients,
                    mode=mode,
                    max_samples=bench_samples,
                    use_stopping_rule=False,
                    warmup=max(10, bench_samples // 10),
                )
                out[(size, mode)] = curve
        for size in SIZES_KB:
            print()
            print(f"Figure 18: PDDL {size}KB reads across recovery regimes")
            print(
                render_response_curves(
                    {
                        mode.value: out[(size, mode)]
                        for mode in (
                            ArrayMode.FAULT_FREE,
                            ArrayMode.DEGRADED,
                            ArrayMode.POST_RECONSTRUCTION,
                        )
                    }
                )
            )
        return out

    curves = benchmark.pedantic(run_all, rounds=1, iterations=1)

    def heavy(size, mode):
        return curves[(size, mode)].points[-1].mean_response_ms

    # Unit-sized accesses: post-reconstruction much better than
    # reconstruction, worse than (or equal to) fault-free.
    assert heavy(8, ArrayMode.POST_RECONSTRUCTION) < heavy(
        8, ArrayMode.DEGRADED
    )
    assert heavy(8, ArrayMode.POST_RECONSTRUCTION) >= heavy(
        8, ArrayMode.FAULT_FREE
    ) * 0.95

    # Large accesses: the two failure regimes converge.
    big = SIZES_KB[-1]
    ratio = heavy(big, ArrayMode.DEGRADED) / heavy(
        big, ArrayMode.POST_RECONSTRUCTION
    )
    small_ratio = heavy(8, ArrayMode.DEGRADED) / heavy(
        8, ArrayMode.POST_RECONSTRUCTION
    )
    assert ratio < small_ratio
