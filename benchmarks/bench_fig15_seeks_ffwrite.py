"""Figure 15 — Fault-free write: seek and no-switch counts.

Expected shape (paper appendix): totals exceed the read tallies (pre-reads
plus parity writes); RAID-5's 48 KB column is inflated by universal
read-modify-write; the distribution across local classes mirrors the
fault-free read tallies.
"""

from repro.array.raidops import ArrayMode

from benchmarks._support import LAYOUTS, print_seek_panel


def test_figure15_fault_free_write_seeks(
    benchmark, bench_seek_sizes_kb, bench_samples
):
    mixes = benchmark.pedantic(
        print_seek_panel,
        args=(
            "Figure 15: fault-free write seek/no-switch counts per access",
            LAYOUTS,
            bench_seek_sizes_kb,
            True,
            ArrayMode.FAULT_FREE,
            bench_samples,
        ),
        rounds=1,
        iterations=1,
    )

    from repro.experiments.seeks import run_seek_mix

    reads = run_seek_mix(
        LAYOUTS,
        bench_seek_sizes_kb,
        False,
        mode=ArrayMode.FAULT_FREE,
        samples_per_point=bench_samples,
    )
    for name in LAYOUTS:
        for size in bench_seek_sizes_kb:
            # Writes always do more physical work than same-size reads.
            assert mixes[(name, size)].total > reads[(name, size)].total

    # RAID-5 implements every 48KB write as a small write (read old data +
    # parity), roughly doubling its operation count relative to the k=4
    # layouts, which mostly write full stripes.
    if 48 in bench_seek_sizes_kb:
        assert (
            mixes[("raid5", 48)].total
            > mixes[("pddl", 48)].total * 1.3
        )
