"""Figure 8 — Write response times, failure-free mode.

Expected shape (paper §4.2): similar at 8 KB; for larger accesses PRIME,
DATUM and PDDL beat Parity Declustering, with the gap growing with size;
RAID-5 is much slower at 48 KB because its stripe is 13 wide — every write
is a small write (read-modify-write), while the k = 4 layouts get frequent
full-stripe writes.
"""

from repro.array.raidops import ArrayMode

from benchmarks._support import (
    final_response,
    first_response,
    run_figure_sweep,
)


def test_figure8_fault_free_writes(
    benchmark, bench_sizes_kb, bench_clients, bench_samples
):
    panels = benchmark.pedantic(
        run_figure_sweep,
        args=(
            bench_sizes_kb,
            True,
            bench_clients,
            bench_samples,
            ArrayMode.FAULT_FREE,
            "Figure 8",
        ),
        rounds=1,
        iterations=1,
    )

    # 8KB: similar across layouts.
    small = panels[8]
    lights = [first_response(small, name) for name in small]
    assert max(lights) / min(lights) < 1.4

    # 48KB: RAID-5 pays read-modify-write on every access while the
    # declustered layouts mostly write full stripes.
    if 48 in panels:
        curves = panels[48]
        for name in ("pddl", "datum", "prime"):
            assert final_response(curves, "raid5") > final_response(
                curves, name
            )

    # Large writes: DATUM/PDDL ahead of Parity Declustering under load.
    biggest = panels[max(panels)]
    pd = final_response(biggest, "parity-declustering")
    for name in ("pddl", "datum"):
        assert final_response(biggest, name) <= pd * 1.10

    # §5: "for light to moderate workloads, PDDL has among the very best
    # response times especially for write intensive workloads."
    for size in bench_sizes_kb:
        if size < 48:
            continue
        curves = panels[size]
        best_light = min(first_response(curves, n) for n in curves)
        assert first_response(curves, "pddl") <= best_light * 1.05, size
        # RAID-5 is the worst writer under load at every size.
        finals = {n: final_response(curves, n) for n in curves}
        assert finals["raid5"] == max(finals.values()), size
