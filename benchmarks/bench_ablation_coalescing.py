"""Ablation — request coalescing (RAIDframe merges contiguous sectors).

The controller merges physically contiguous stripe-unit operations of one
phase into single disk requests by default.  Expected: coalescing helps
most where layouts put adjacent units on one disk — DATUM (overlapping
colex stripes) gains the most, RAID-5 reads (one unit per disk per stripe)
gain the least.
"""

import random

from repro.array.controller import ArrayController
from repro.experiments.config import paper_layout
from repro.experiments.report import render_table
from repro.sim.engine import SimulationEngine
from repro.stats.summary import SummaryStats
from repro.workload.client import ClosedLoopClient
from repro.workload.generators import UniformGenerator
from repro.workload.spec import AccessSpec


def _run(layout_name, coalesce, samples, clients=15, seed=0):
    engine = SimulationEngine()
    controller = ArrayController(
        engine, paper_layout(layout_name), coalesce=coalesce
    )
    stats = SummaryStats()

    def on_response(client, access, ms):
        stats.push(ms)
        if stats.count >= samples:
            engine.stop()
            return False
        return True

    for c in range(clients):
        gen = UniformGenerator(
            controller.addressable_data_units, 24,
            random.Random(f"{seed}/{c}"),
        )
        ClosedLoopClient(
            c, controller, gen, AccessSpec(192, False), on_response
        ).start()
    engine.run()
    return stats.mean


def test_ablation_request_coalescing(benchmark, bench_samples):
    layouts = ("datum", "pddl", "raid5")

    def run_all():
        return {
            (name, coalesce): _run(name, coalesce, bench_samples)
            for name in layouts
            for coalesce in (True, False)
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("Ablation: request coalescing (192KB reads, 15 clients)")
    rows = []
    for name in layouts:
        on = results[(name, True)]
        off = results[(name, False)]
        rows.append([name, f"{on:.2f}", f"{off:.2f}", f"{off / on:.2f}x"])
    print(
        render_table(
            ["layout", "coalesced ms", "uncoalesced ms", "speedup"], rows
        )
    )

    # Coalescing never hurts, and DATUM gains more than RAID-5.
    for name in layouts:
        assert results[(name, True)] <= results[(name, False)] * 1.05
    datum_gain = results[("datum", False)] / results[("datum", True)]
    raid5_gain = results[("raid5", False)] / results[("raid5", True)]
    assert datum_gain > raid5_gain
