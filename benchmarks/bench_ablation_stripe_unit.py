"""Ablation — stripe unit size (the paper's declared open question).

"A very interesting question we leave open here is the issue of the
optimal stripe unit size" (§4).  Sweeps 4/8/16/32 KB units for PDDL at a
fixed 96 KB access.  Expected (the classic Chen/Lee tradeoff the paper
cites [4]): small units buy parallelism and win at light load; large
units cut per-access positioning overhead and win under concurrency —
the optimal unit grows with load.
"""

import random

from repro.array.controller import ArrayController
from repro.experiments.config import paper_layout
from repro.experiments.report import render_table
from repro.sim.engine import SimulationEngine
from repro.stats.summary import SummaryStats
from repro.workload.client import ClosedLoopClient
from repro.workload.generators import UniformGenerator
from repro.workload.spec import AccessSpec

UNIT_SIZES_KB = (4, 8, 16, 32)
ACCESS_KB = 96


def _run(unit_kb, samples, clients, seed=0):
    engine = SimulationEngine()
    controller = ArrayController(
        engine, paper_layout("pddl"), stripe_unit_kb=unit_kb
    )
    stats = SummaryStats()

    def on_response(client, access, ms):
        stats.push(ms)
        if stats.count >= samples:
            engine.stop()
            return False
        return True

    spec = AccessSpec(ACCESS_KB, False)
    for c in range(clients):
        gen = UniformGenerator(
            controller.addressable_data_units,
            spec.units(unit_kb),
            random.Random(f"{seed}/{c}"),
        )
        ClosedLoopClient(
            c, controller, gen, spec, on_response, stripe_unit_kb=unit_kb
        ).start()
    engine.run()
    return stats.mean


def test_ablation_stripe_unit_size(benchmark, bench_samples):
    def run_all():
        return {
            (unit, clients): _run(unit, bench_samples, clients)
            for unit in UNIT_SIZES_KB
            for clients in (1, 15)
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print(f"Ablation: stripe unit size (PDDL, {ACCESS_KB}KB reads)")
    print(
        render_table(
            ["unit KB", "clients", "mean response ms"],
            [
                [unit, clients, f"{ms:.2f}"]
                for (unit, clients), ms in sorted(results.items())
            ],
        )
    )

    # Light load: small units parallelize the access across more disks.
    assert results[(4, 1)] <= results[(32, 1)]
    # Heavy load: large units do fewer, cheaper operations per access.
    assert results[(32, 15)] < results[(4, 15)]
    # The knob matters: at least 20% swing somewhere in the sweep.
    values = list(results.values())
    assert max(values) > 1.2 * min(values)
