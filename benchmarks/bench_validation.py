"""Validation — analytic model vs event simulation.

Extends the paper's Figure-3-vs-Figure-4 cross-check: every quantity the
library can compute both analytically (exact plan enumeration) and by
simulation (mechanical drives + SSTF queues) must agree within sampling
noise.  Failures here mean simulator drift, not workload variance.
"""

from repro.experiments.report import render_table
from repro.experiments.validation import validation_rows


def test_validation_analytic_vs_simulated(benchmark, bench_samples):
    rows = benchmark.pedantic(
        validation_rows,
        kwargs=dict(samples=max(250, bench_samples)),
        rounds=1,
        iterations=1,
    )

    print()
    print("Validation: analytic vs simulated")
    print(
        render_table(
            ["quantity", "layout", "analytic", "simulated", "rel err"],
            [
                [
                    row.quantity,
                    row.layout,
                    f"{row.analytic:.3f}",
                    f"{row.simulated:.3f}",
                    f"{row.relative_error:.1%}",
                ]
                for row in rows
            ],
        )
    )

    for row in rows:
        assert row.relative_error < 0.10, (row.quantity, row.layout)
