"""Extension — multi-failure tolerance (paper §1/§5).

PDDL "allows arbitrary fixed combinations of check and data blocks" and
multiple distributed spares.  Builds a two-check / two-spare layout,
plans rebuilds for every double failure, and reports the worst-case
load imbalance and the degraded read amplification.
"""

from repro.core.layout import PDDLLayout
from repro.core.multifailure import (
    degraded_read_cost,
    multi_rebuild_read_tally,
    worst_case_tally_deviation,
)
from repro.core.permutation import BasePermutation
from repro.experiments.report import render_table

#: 16 disks: 2 spares + 2 groups of 7 with 2 checks each (5 data + P + Q).
PQ_PERMUTATION = (0, 9, 1, 12, 4, 15, 2, 8, 5, 3, 14, 7, 10, 6, 13, 11)


def test_multifailure_double_fault_rebuild(benchmark):
    perm = BasePermutation(PQ_PERMUTATION, k=7, spares=2, checks=2)
    layout = PDDLLayout(perm)
    layout.validate()

    deviation, worst = benchmark.pedantic(
        worst_case_tally_deviation,
        args=(layout,),
        kwargs=dict(failures=2),
        rounds=1,
        iterations=1,
    )

    tally = multi_rebuild_read_tally(layout, list(worst))
    costs = {
        "no failure": degraded_read_cost(layout, []),
        "single failure": degraded_read_cost(layout, [0]),
        "double failure": degraded_read_cost(layout, [0, 1]),
    }

    print()
    print("Double-failure rebuild on 16 disks (k=7, P+Q, 2 spares)")
    print(
        render_table(
            ["metric", "value"],
            [
                ["worst-case read-tally deviation", deviation],
                ["worst failure pair", str(worst)],
                ["per-survivor reads (worst pair)",
                 f"{min(tally.values())}..{max(tally.values())}"],
                *[
                    [f"mean reads/unit, {name}", f"{cost:.3f}"]
                    for name, cost in costs.items()
                ],
            ],
        )
    )

    # Every survivor participates in the worst-case rebuild.
    assert all(v > 0 for v in tally.values())
    # Deviation stays bounded by a couple of stripes' worth of reads.
    assert deviation <= 2 * layout.k
    # Read amplification is monotone in concurrent failures and bounded by
    # the decode width.
    assert 1.0 == costs["no failure"]
    assert costs["no failure"] < costs["single failure"]
    assert costs["single failure"] < costs["double failure"]
    assert costs["double failure"] < layout.k
