"""Figure 9 — Write response times, single-failure (degraded) mode.

Expected shape (paper §4.2): the declustered layouts are *slightly better*
than failure-free (large writes skip the failed disk); RAID-5 degrades,
most at small sizes, where every write touching the failed disk is forced
into large-write form with more physical reads.
"""

from repro.array.raidops import ArrayMode

from benchmarks._support import (
    final_response,
    run_figure_sweep,
    run_panel,
)


def test_figure9_degraded_writes(
    benchmark, bench_sizes_kb, bench_clients, bench_samples
):
    panels = benchmark.pedantic(
        run_figure_sweep,
        args=(
            bench_sizes_kb,
            True,
            bench_clients,
            bench_samples,
            ArrayMode.DEGRADED,
            "Figure 9",
        ),
        rounds=1,
        iterations=1,
    )

    heavy = bench_clients[-1]
    for size in (panels.keys() & {96, 240}) or [max(panels)]:
        degraded = panels[size]
        clean = run_panel(size, True, [heavy], bench_samples)
        # Declustered degraded writes: no worse than fault-free + margin.
        for name in ("pddl", "datum", "prime"):
            assert final_response(degraded, name) <= (
                final_response(clean, name) * 1.15
            ), (name, size)

    # RAID-5 degrades relative to fault-free at the smaller sizes.
    size = min(p for p in panels if p >= 48)
    degraded = panels[size]
    clean = run_panel(size, True, [heavy], bench_samples)
    assert final_response(degraded, "raid5") > final_response(
        clean, "raid5"
    ) * 0.95
