"""Ablation — workload pattern (the paper's declared simplification).

"Traces or synthetic workloads with a more realistic access mix would be
a better predictor of the performance of the arrays in a real situation"
(§4).  Compares uniform-random (the paper's choice), sequential, Zipf-
skewed, and a 70/30 read/write mix on the PDDL array.
"""

import random

from repro.array.controller import ArrayController
from repro.experiments.config import paper_layout
from repro.experiments.report import render_table
from repro.sim.engine import SimulationEngine
from repro.stats.histogram import LatencyHistogram
from repro.workload.client import ClosedLoopClient
from repro.workload.generators import (
    SequentialGenerator,
    UniformGenerator,
    ZipfGenerator,
)
from repro.workload.spec import AccessSpec
from repro.workload.trace import TraceReplayClient, synthesize_mixed_trace


def _run_generator(make_gen, samples, clients=8, seed=0):
    engine = SimulationEngine()
    controller = ArrayController(engine, paper_layout("pddl"))
    histogram = LatencyHistogram()

    def on_response(client, access, ms):
        histogram.record(ms)
        if histogram.count >= samples:
            engine.stop()
            return False
        return True

    for c in range(clients):
        gen = make_gen(controller, c)
        ClosedLoopClient(
            c, controller, gen, AccessSpec(48, False), on_response
        ).start()
    engine.run()
    return histogram


def _run_mixed_trace(samples, clients=8, seed=0):
    engine = SimulationEngine()
    controller = ArrayController(engine, paper_layout("pddl"))
    histogram = LatencyHistogram()
    per_client = samples // clients + 1
    for c in range(clients):
        trace = synthesize_mixed_trace(
            per_client,
            controller.addressable_data_units,
            6,
            write_fraction=0.3,
            rng=random.Random(f"{seed}/{c}"),
        )
        TraceReplayClient(
            c, controller, trace,
            on_response=lambda access, ms: histogram.record(ms),
        ).start()
    engine.run()
    return histogram


def test_ablation_workload_pattern(benchmark, bench_samples):
    def run_all():
        return {
            "uniform": _run_generator(
                lambda ctl, c: UniformGenerator(
                    ctl.addressable_data_units, 6, random.Random(f"u/{c}")
                ),
                bench_samples,
            ),
            "sequential": _run_generator(
                lambda ctl, c: SequentialGenerator(
                    ctl.addressable_data_units, 6, start=c * 40_000
                ),
                bench_samples,
            ),
            "zipf": _run_generator(
                lambda ctl, c: ZipfGenerator(
                    ctl.addressable_data_units, 6,
                    random.Random(f"z/{c}"), theta=1.1,
                ),
                bench_samples,
            ),
            "70/30 mix": _run_mixed_trace(bench_samples),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("Ablation: workload pattern (PDDL, 48KB accesses, 8 clients)")
    print(
        render_table(
            ["workload", "mean ms", "p50", "p95", "p99"],
            [
                [
                    name,
                    f"{h.mean:.2f}",
                    f"{h.percentile(50):.1f}",
                    f"{h.percentile(95):.1f}",
                    f"{h.percentile(99):.1f}",
                ]
                for name, h in results.items()
            ],
        )
    )

    # Sequential locality slashes positioning cost relative to uniform.
    assert results["sequential"].mean < results["uniform"].mean * 0.8
    # Zipf narrows the seek range: no slower than uniform.
    assert results["zipf"].mean <= results["uniform"].mean * 1.05
    # Mixed read/write pays the write penalty (pre-read phases).
    assert results["70/30 mix"].mean > results["uniform"].mean
    # Tails are ordered sanely everywhere.
    for h in results.values():
        assert h.percentile(99) >= h.percentile(50)
