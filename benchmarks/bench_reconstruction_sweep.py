"""Extension — on-line reconstruction into distributed spare space.

The paper motivates distributed sparing ("a sure win") but reports only
steady-state response times; this bench exercises the rebuild process
itself: sweep duration vs rebuild parallelism, with and without competing
client load, on the 13-disk PDDL array.
"""

import random

from repro.array.controller import ArrayController
from repro.array.reconstructor import Reconstructor
from repro.experiments.config import paper_layout
from repro.experiments.report import render_table
from repro.sim.engine import SimulationEngine
from repro.workload.client import ClosedLoopClient
from repro.workload.generators import UniformGenerator
from repro.workload.spec import AccessSpec

REBUILD_ROWS = 13 * 40  # 40 layout patterns' worth of lost units


def _rebuild(parallel_steps, clients, seed=0):
    engine = SimulationEngine()
    controller = ArrayController(engine, paper_layout("pddl"))
    controller.fail_disk(0)
    if clients:
        def on_response(client, access, ms):
            return controller.mode.value == "degraded"

        for c in range(clients):
            gen = UniformGenerator(
                controller.addressable_data_units, 6,
                random.Random(f"{seed}/{c}"),
            )
            ClosedLoopClient(
                c, controller, gen, AccessSpec(48, False), on_response
            ).start()
    recon = Reconstructor(
        controller, parallel_steps=parallel_steps, rows=REBUILD_ROWS
    )
    recon.start()
    engine.run()
    return recon.duration_ms


def test_reconstruction_sweep(benchmark):
    def run_all():
        return {
            ("idle", 1): _rebuild(1, 0),
            ("idle", 4): _rebuild(4, 0),
            ("idle", 8): _rebuild(8, 0),
            ("loaded", 1): _rebuild(1, 8),
            ("loaded", 4): _rebuild(4, 8),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print(f"Reconstruction sweep ({REBUILD_ROWS} rows of lost units)")
    print(
        render_table(
            ["condition", "parallel steps", "rebuild ms"],
            [
                [cond, steps, f"{ms:.0f}"]
                for (cond, steps), ms in results.items()
            ],
        )
    )

    # More rebuild parallelism shortens the sweep.
    assert results[("idle", 4)] < results[("idle", 1)]
    assert results[("idle", 8)] <= results[("idle", 4)] * 1.05
    # Competing client load slows reconstruction down.
    assert results[("loaded", 1)] > results[("idle", 1)]
