"""Figure 6 — Read response times, single-failure (degraded) mode.

PDDL runs in reconstruction mode (lost units rebuilt on the fly from the
stripe's survivors).  Expected shape (paper §4.1): the fault-free
relationships persist quantitatively shifted, except RAID-5, whose
"run-time performance degrades significantly; this phenomenon is, in fact,
the rationale for declustering".

Runs on :mod:`repro.runner` (``REPRO_BENCH_WORKERS``,
``REPRO_BENCH_CACHE`` — with the cache on, the fault-free blow-up
baseline below reuses Figure 5's cached points instead of re-simulating).
"""

from repro.array.raidops import ArrayMode

from benchmarks._support import (
    final_response,
    run_figure_sweep,
    run_panel,
)


def test_figure6_degraded_reads(
    benchmark, bench_sizes_kb, bench_clients, bench_samples
):
    panels = benchmark.pedantic(
        run_figure_sweep,
        args=(
            bench_sizes_kb,
            False,
            bench_clients,
            bench_samples,
            ArrayMode.DEGRADED,
            "Figure 6",
        ),
        rounds=1,
        iterations=1,
    )

    # RAID-5 degrades far more than the declustered layouts: compare the
    # degraded/fault-free blow-up at a mid access size under load.
    size = 48 if 48 in panels else list(panels)[1]
    degraded = panels[size]
    clean = run_panel(size, False, [bench_clients[-1]], bench_samples)
    for declustered in ("pddl", "datum", "parity-declustering"):
        raid5_blowup = (
            final_response(degraded, "raid5")
            / final_response(clean, "raid5")
        )
        other_blowup = (
            final_response(degraded, declustered)
            / final_response(clean, declustered)
        )
        assert raid5_blowup > other_blowup

    # Declustered layouts stay ordered sanely under failure: DATUM keeps
    # its heavy-load lead.
    finals = {name: final_response(degraded, name) for name in degraded}
    assert finals["datum"] <= finals["raid5"]
