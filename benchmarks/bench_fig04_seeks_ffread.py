"""Figure 4 — Fault-free read: seek and no-switch counts.

Each (layout, access size) column decomposes the physical operations of an
average logical access into non-local seeks, local cylinder switches,
local track switches, and no-switch operations.  Expected shape (paper
§4.1):

- the non-local seek count equals the disk working set size of Figure 3
  (the cross-check the paper highlights);
- RAID-5 and PRIME carry the most non-local seeks, DATUM the fewest;
- counts are nearly independent of the workload level.
"""

import pytest

from repro.array.raidops import ArrayMode
from repro.experiments.config import paper_layout
from repro.stats.workingset import average_working_set

from benchmarks._support import LAYOUTS, print_seek_panel


def test_figure4_fault_free_read_seeks(
    benchmark, bench_seek_sizes_kb, bench_samples
):
    mixes = benchmark.pedantic(
        print_seek_panel,
        args=(
            "Figure 4: fault-free read seek/no-switch counts per access",
            LAYOUTS,
            bench_seek_sizes_kb,
            False,
            ArrayMode.FAULT_FREE,
            bench_samples,
        ),
        rounds=1,
        iterations=1,
    )

    # Non-local seeks == Figure 3 working set (independently determined).
    for name in LAYOUTS:
        for size in bench_seek_sizes_kb:
            analytic = average_working_set(
                paper_layout(name), size // 8, False
            )
            measured = mixes[(name, size)].non_local
            assert measured == pytest.approx(analytic, rel=0.12), (
                name, size,
            )

    # Orderings at a mid size: DATUM fewest non-local seeks, RAID-5/PRIME
    # the most.
    size = 96 if 96 in bench_seek_sizes_kb else bench_seek_sizes_kb[1]
    nonlocal_ = {n: mixes[(n, size)].non_local for n in LAYOUTS}
    assert nonlocal_["datum"] == min(nonlocal_.values())
    assert max(nonlocal_, key=nonlocal_.get) in ("raid5", "prime")

    # Totals: one physical operation per stripe unit read.
    for name in LAYOUTS:
        biggest = bench_seek_sizes_kb[-1]
        assert mixes[(name, biggest)].total == pytest.approx(
            biggest // 8, rel=0.05
        )
