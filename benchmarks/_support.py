"""Helpers shared by the response-time figure benchmarks.

The simulation points run through :mod:`repro.runner`: set
``REPRO_BENCH_WORKERS=N`` to fan sweep points across N worker processes
(results are bit-identical to serial), and ``REPRO_BENCH_CACHE`` to
memoize points on disk (``1`` for the default cache dir, anything else
is used as the cache root).  Overlapping sweeps — e.g. Figure 6's
degraded/fault-free blow-up baseline re-running Figure 5 points — then
cost one simulation, not two.
"""

from __future__ import annotations

import os
from typing import Dict, Sequence

from repro.array.raidops import ArrayMode
from repro.experiments.report import (
    render_response_curves,
    render_seek_mix_table,
)
from repro.experiments.response import ResponseCurve
from repro.experiments.seeks import run_seek_mix
from repro.runner import (
    ParallelRunner,
    ResultCache,
    curves_from_records,
    default_cache_dir,
    mode_name,
    response_sweep_specs,
)

LAYOUTS = ("datum", "parity-declustering", "raid5", "pddl", "prime")


def bench_runner() -> ParallelRunner:
    """The env-configured runner shared by all figure/table benchmarks."""
    cache_env = os.environ.get("REPRO_BENCH_CACHE", "")
    cache = None
    if cache_env:
        root = default_cache_dir() if cache_env == "1" else cache_env
        cache = ResultCache(root)
    return ParallelRunner(cache=cache)  # workers: $REPRO_BENCH_WORKERS


def run_panel(
    size_kb: int,
    is_write: bool,
    clients: Sequence[int],
    samples: int,
    mode: ArrayMode = ArrayMode.FAULT_FREE,
    layouts: Sequence[str] = LAYOUTS,
    seed: int = 0,
) -> Dict[str, ResponseCurve]:
    """One figure panel (all layout curves at one access size/type/mode)."""
    specs = response_sweep_specs(
        (size_kb,),
        clients,
        is_write,
        mode_name(mode),
        samples,
        seed=seed,
        layouts=layouts,
    )
    report = bench_runner().run(specs)
    return curves_from_records(report.records)[size_kb]


def print_panel(title: str, curves: Dict[str, ResponseCurve]) -> None:
    print()
    print(title)
    print(render_response_curves(curves))


def run_figure_sweep(
    sizes_kb: Sequence[int],
    is_write: bool,
    clients: Sequence[int],
    samples: int,
    mode: ArrayMode,
    figure_name: str,
    seed: int = 0,
) -> Dict[int, Dict[str, ResponseCurve]]:
    """All panels of one figure in a single runner batch."""
    specs = response_sweep_specs(
        sizes_kb, clients, is_write, mode_name(mode), samples, seed=seed
    )
    report = bench_runner().run(specs)
    panels = curves_from_records(report.records)
    kind = "writes" if is_write else "reads"
    for size_kb in sizes_kb:
        print_panel(
            f"{figure_name}: {size_kb}KB {kind}, {mode.value}",
            panels[size_kb],
        )
    return panels


def final_response(curves: Dict[str, ResponseCurve], name: str) -> float:
    return curves[name].points[-1].mean_response_ms


def first_response(curves: Dict[str, ResponseCurve], name: str) -> float:
    return curves[name].points[0].mean_response_ms


def print_seek_panel(
    title: str,
    layouts: Sequence[str],
    sizes_kb: Sequence[int],
    is_write: bool,
    mode: ArrayMode,
    samples: int,
):
    mixes = run_seek_mix(
        layouts,
        sizes_kb,
        is_write,
        mode=mode,
        samples_per_point=samples,
    )
    print()
    print(title)
    print(render_seek_mix_table(mixes, sizes_kb))
    return mixes
