"""Helpers shared by the response-time figure benchmarks."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.array.raidops import ArrayMode
from repro.experiments.report import (
    render_response_curves,
    render_seek_mix_table,
)
from repro.experiments.response import ResponseCurve, run_figure
from repro.experiments.seeks import run_seek_mix
from repro.workload.spec import AccessSpec

LAYOUTS = ("datum", "parity-declustering", "raid5", "pddl", "prime")


def run_panel(
    size_kb: int,
    is_write: bool,
    clients: Sequence[int],
    samples: int,
    mode: ArrayMode = ArrayMode.FAULT_FREE,
    layouts: Sequence[str] = LAYOUTS,
    seed: int = 0,
) -> Dict[str, ResponseCurve]:
    """One figure panel (all layout curves at one access size/type/mode)."""
    return run_figure(
        layouts,
        AccessSpec(size_kb, is_write),
        clients,
        mode=mode,
        max_samples=samples,
        use_stopping_rule=False,
        warmup=max(10, samples // 10),
        seed=seed,
    )


def print_panel(title: str, curves: Dict[str, ResponseCurve]) -> None:
    print()
    print(title)
    print(render_response_curves(curves))


def run_figure_sweep(
    sizes_kb: Sequence[int],
    is_write: bool,
    clients: Sequence[int],
    samples: int,
    mode: ArrayMode,
    figure_name: str,
) -> Dict[int, Dict[str, ResponseCurve]]:
    """All panels of one figure, printing as it goes."""
    panels = {}
    for size_kb in sizes_kb:
        curves = run_panel(size_kb, is_write, clients, samples, mode=mode)
        kind = "writes" if is_write else "reads"
        print_panel(
            f"{figure_name}: {size_kb}KB {kind}, {mode.value}", curves
        )
        panels[size_kb] = curves
    return panels


def final_response(curves: Dict[str, ResponseCurve], name: str) -> float:
    return curves[name].points[-1].mean_response_ms


def first_response(curves: Dict[str, ResponseCurve], name: str) -> float:
    return curves[name].points[0].mean_response_ms


def print_seek_panel(
    title: str,
    layouts: Sequence[str],
    sizes_kb: Sequence[int],
    is_write: bool,
    mode: ArrayMode,
    samples: int,
):
    mixes = run_seek_mix(
        layouts,
        sizes_kb,
        is_write,
        mode=mode,
        samples_per_point=samples,
    )
    print()
    print(title)
    print(render_seek_mix_table(mixes, sizes_kb))
    return mixes
