"""Extension — MTTDL: distributed sparing is "a sure win" (paper §5).

Couples the analytic Markov models to the simulator: measures PDDL's
rebuild time per layout pattern under client load, scales it to a
full-disk rebuild, and compares mean time to data loss across RAID-5,
declustering without sparing, and PDDL with distributed sparing.
"""

from repro.array.controller import ArrayController
from repro.array.reconstructor import Reconstructor
from repro.experiments.config import paper_layout
from repro.experiments.report import render_table
from repro.reliability.mttdl import (
    mttdl_declustered,
    mttdl_distributed_sparing,
    mttdl_raid5,
    rebuild_hours_from_simulation,
)
from repro.sim.engine import SimulationEngine

MTTF_HOURS = 500_000.0
REPLACEMENT_HOURS = 24.0
PATTERNS = 20


def _simulated_rebuild_ms_per_pattern() -> float:
    engine = SimulationEngine()
    controller = ArrayController(engine, paper_layout("pddl"))
    controller.fail_disk(0)
    recon = Reconstructor(
        controller, parallel_steps=4, rows=13 * PATTERNS
    )
    recon.start()
    engine.run()
    return recon.duration_ms / PATTERNS


def test_reliability_mttdl(benchmark):
    per_pattern_ms = benchmark.pedantic(
        _simulated_rebuild_ms_per_pattern, rounds=1, iterations=1
    )

    controller_patterns = ArrayController(
        SimulationEngine(), paper_layout("pddl")
    ).periods
    rebuild_hours = rebuild_hours_from_simulation(
        per_pattern_ms, controller_patterns
    )

    rows = [
        mttdl_raid5(13, MTTF_HOURS, REPLACEMENT_HOURS),
        mttdl_declustered(13, 4, MTTF_HOURS, REPLACEMENT_HOURS),
        mttdl_distributed_sparing(13, 4, MTTF_HOURS, rebuild_hours),
    ]

    print()
    print(
        f"MTTDL (disk MTTF {MTTF_HOURS:.0f}h; replacement"
        f" {REPLACEMENT_HOURS:.0f}h; simulated spare rebuild"
        f" {rebuild_hours:.2f}h)"
    )
    print(
        render_table(
            ["scheme", "repair window h", "MTTDL years"],
            [
                [r.scheme, f"{r.repair_hours:.2f}", f"{r.mttdl_years:,.0f}"]
                for r in rows
            ],
        )
    )

    raid5, declustered, spared = rows
    # Declustering alone already helps (narrower reliability groups).
    assert declustered.mttdl_hours > raid5.mttdl_hours
    # Distributed sparing multiplies the win: the exposure window drops
    # from a human-scale replacement to an automatic rebuild.
    assert spared.mttdl_hours > 5 * declustered.mttdl_hours
    assert rebuild_hours < REPLACEMENT_HOURS
