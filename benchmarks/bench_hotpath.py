"""Hot-path macro-benchmark: events/sec through the simulation stack.

Unlike the figure benchmarks (which reproduce the paper's numbers), this
script measures how *fast* the simulator itself runs: it executes a
small, fixed set of fig5-style response points and one lifecycle run
through :func:`repro.runner.execute_spec` — the exact code path the
runner, the CLI, and every figure benchmark share — and reports
wall-clock time and engine events per second for each.

Run it directly (no pytest):

    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick \
        --out BENCH_hotpath.json

The JSON is the performance contract tracked across PRs: commit the
refreshed ``BENCH_hotpath.json`` whenever the hot path changes, and pass
``--baseline OLD.json`` to fold the previous measurement (and the
resulting speedup) into the new file.  Results are unaffected by the
result cache (this script never uses one) and the simulation output
itself stays pinned by the golden-trace tests in ``tests/runner``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import List, Optional

from repro.runner import ExperimentSpec, LifecycleSpec, execute_spec
from repro.runner.spec import Spec


def hotpath_specs(quick: bool) -> List[Spec]:
    """The measured workload set (fig5-style points + one lifecycle)."""
    samples = 60 if quick else 300
    life_samples = 400 if quick else 1500
    specs: List[Spec] = [
        # Figure 5's shape: fault-free reads across the load axis.
        ExperimentSpec(
            layout="pddl", size_kb=96, clients=8, max_samples=samples
        ),
        ExperimentSpec(
            layout="parity-declustering",
            size_kb=96,
            clients=8,
            max_samples=samples,
        ),
        ExperimentSpec(
            layout="raid5", size_kb=96, clients=8, max_samples=samples
        ),
        # Small accesses stress the scheduler/queueing layers instead of
        # the transfer model.
        ExperimentSpec(
            layout="pddl", size_kb=8, clients=25, max_samples=samples
        ),
        # One full lifecycle: fault injection + rebuild + post regime.
        LifecycleSpec(
            layout="pddl",
            size_kb=24,
            clients=4,
            fault_time_ms=500.0,
            degraded_dwell_ms=300.0,
            rebuild_rows=26,
            post_samples=40,
            max_samples=life_samples,
        ),
    ]
    return specs


def spec_label(spec: Spec) -> str:
    if isinstance(spec, ExperimentSpec):
        return (
            f"response/{spec.layout}/{spec.size_kb}KB/c{spec.clients}"
            f"/n{spec.max_samples}"
        )
    return f"lifecycle/{spec.layout}/{spec.size_kb}KB/c{spec.clients}"


def measure(spec: Spec, repeat: int) -> dict:
    """Best-of-``repeat`` wall clock for one spec (events are identical
    across repeats — determinism contract)."""
    best_s: Optional[float] = None
    events = 0
    for _ in range(repeat):
        started = time.perf_counter()
        record = execute_spec(spec)
        elapsed = time.perf_counter() - started
        events = record["instrumentation"]["engine"]["events_processed"]
        if best_s is None or elapsed < best_s:
            best_s = elapsed
    return {
        "label": spec_label(spec),
        "wall_s": round(best_s, 6),
        "events": events,
        "events_per_s": round(events / best_s, 1),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="short runs (CI smoke): ~5x fewer samples per spec",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="best-of-N wall-clock per spec (default 3)",
    )
    parser.add_argument(
        "--out", default="BENCH_hotpath.json",
        help="output JSON path (default BENCH_hotpath.json)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="previous BENCH_hotpath.json to compute speedups against",
    )
    args = parser.parse_args(argv)

    results = []
    for spec in hotpath_specs(args.quick):
        entry = measure(spec, max(1, args.repeat))
        print(
            f"{entry['label']:48s} {entry['wall_s']*1000:9.1f} ms"
            f" {entry['events']:8d} events"
            f" {entry['events_per_s']:12.0f} ev/s"
        )
        results.append(entry)

    total_events = sum(r["events"] for r in results)
    total_wall = sum(r["wall_s"] for r in results)
    aggregate = round(total_events / total_wall, 1)
    print(
        f"{'TOTAL':48s} {total_wall*1000:9.1f} ms"
        f" {total_events:8d} events {aggregate:12.0f} ev/s"
    )

    summary = {
        "bench": "hotpath",
        "quick": args.quick,
        "repeat": args.repeat,
        "python": platform.python_version(),
        "specs": results,
        "total": {
            "wall_s": round(total_wall, 6),
            "events": total_events,
            "events_per_s": aggregate,
        },
    }

    if args.baseline:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        base_by_label = {r["label"]: r for r in baseline.get("specs", [])}
        speedups = {}
        for entry in results:
            base = base_by_label.get(entry["label"])
            if base and base["events_per_s"] > 0:
                speedups[entry["label"]] = round(
                    entry["events_per_s"] / base["events_per_s"], 2
                )
        summary["baseline"] = {
            "python": baseline.get("python"),
            "total": baseline.get("total"),
            "specs": baseline.get("specs"),
        }
        base_total = baseline.get("total", {}).get("events_per_s")
        if base_total:
            summary["speedup"] = {
                "total": round(aggregate / base_total, 2),
                "per_spec": speedups,
            }
            print(f"speedup vs baseline: {summary['speedup']['total']:.2f}x")

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
