"""Hot-path macro-benchmark: events/sec through the simulation stack.

Unlike the figure benchmarks (which reproduce the paper's numbers), this
script measures how *fast* the simulator itself runs: it executes a
small, fixed set of fig5-style response points and one lifecycle run
through :func:`repro.runner.execute_spec` — the exact code path the
runner, the CLI, and every figure benchmark share — and reports
wall-clock time and engine events per second for each.

Run it directly (no pytest):

    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick \
        --out BENCH_hotpath.json

The JSON is the performance contract tracked across PRs: commit the
refreshed ``BENCH_hotpath.json`` whenever the hot path changes, and pass
``--baseline OLD.json`` to fold the previous measurement (and the
resulting speedup) into the new file.  Results are unaffected by the
result cache (this script never uses one) and the simulation output
itself stays pinned by the golden-trace tests in ``tests/runner``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import List, Optional

from repro.experiments.campaign import campaign_specs
from repro.runner import ExperimentSpec, LifecycleSpec, execute_spec
from repro.runner.execute import BatchedTrialExecutor
from repro.runner.provenance import sweep_provenance
from repro.runner.spec import Spec


def hotpath_specs(quick: bool) -> List[Spec]:
    """The measured workload set (fig5-style points + one lifecycle)."""
    samples = 60 if quick else 300
    life_samples = 400 if quick else 1500
    specs: List[Spec] = [
        # Figure 5's shape: fault-free reads across the load axis.
        ExperimentSpec(
            layout="pddl", size_kb=96, clients=8, max_samples=samples
        ),
        ExperimentSpec(
            layout="parity-declustering",
            size_kb=96,
            clients=8,
            max_samples=samples,
        ),
        ExperimentSpec(
            layout="raid5", size_kb=96, clients=8, max_samples=samples
        ),
        # Small accesses stress the scheduler/queueing layers instead of
        # the transfer model.
        ExperimentSpec(
            layout="pddl", size_kb=8, clients=25, max_samples=samples
        ),
        # One full lifecycle: fault injection + rebuild + post regime.
        LifecycleSpec(
            layout="pddl",
            size_kb=24,
            clients=4,
            fault_time_ms=500.0,
            degraded_dwell_ms=300.0,
            rebuild_rows=26,
            post_samples=40,
            max_samples=life_samples,
        ),
    ]
    return specs


def campaign_batch_specs(quick: bool) -> List[Spec]:
    """A Monte-Carlo slice measuring batched trial throughput.

    Uses the fast-failure campaign shape from the test suite so each
    trial is event-light: the point is to measure per-trial *setup*
    amortization (layout construction, service tables), which the
    5-spec hot path above never exercises."""
    trials = 40 if quick else 200
    return campaign_specs(
        layout="pddl",
        trials=trials,
        disks=13,
        seed=14,
        mttf_hours=0.03,
        faults=2,
        degraded_dwell_ms=4000.0,
        rebuild_rows=26,
    )


def measure_campaign_batch(specs: List[Spec], repeat: int) -> dict:
    """Batched vs serial wall clock over one campaign slice.

    Records are byte-identical either way (the executor's contract);
    only the wall clock differs.  Kept out of ``total`` deliberately:
    campaign trials are setup-dominated and would skew the events/s
    aggregate that the baseline speedup comparison tracks."""
    best_batched: Optional[float] = None
    events = 0
    for _ in range(repeat):
        executor = BatchedTrialExecutor()
        started = time.perf_counter()
        executor.run(specs)
        elapsed = time.perf_counter() - started
        events = executor.events_processed
        if best_batched is None or elapsed < best_batched:
            best_batched = elapsed
    best_serial: Optional[float] = None
    for _ in range(repeat):
        started = time.perf_counter()
        for spec in specs:
            execute_spec(spec)
        elapsed = time.perf_counter() - started
        if best_serial is None or elapsed < best_serial:
            best_serial = elapsed
    return {
        "label": f"campaign/pddl/13disks/n{len(specs)}",
        "trials": len(specs),
        "events": events,
        "wall_s": round(best_batched, 6),
        "serial_wall_s": round(best_serial, 6),
        "events_per_s": round(events / best_batched, 1),
        "batch_speedup": round(best_serial / best_batched, 2),
    }


def spec_label(spec: Spec) -> str:
    if isinstance(spec, ExperimentSpec):
        return (
            f"response/{spec.layout}/{spec.size_kb}KB/c{spec.clients}"
            f"/n{spec.max_samples}"
        )
    return f"lifecycle/{spec.layout}/{spec.size_kb}KB/c{spec.clients}"


def measure(spec: Spec, repeat: int) -> dict:
    """Best-of-``repeat`` wall clock for one spec (events are identical
    across repeats — determinism contract)."""
    best_s: Optional[float] = None
    events = 0
    for _ in range(repeat):
        started = time.perf_counter()
        record = execute_spec(spec)
        elapsed = time.perf_counter() - started
        events = record["instrumentation"]["engine"]["events_processed"]
        if best_s is None or elapsed < best_s:
            best_s = elapsed
    return {
        "label": spec_label(spec),
        "wall_s": round(best_s, 6),
        "events": events,
        "events_per_s": round(events / best_s, 1),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="short runs (CI smoke): ~5x fewer samples per spec",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="best-of-N wall-clock per spec (default 3)",
    )
    parser.add_argument(
        "--out", default="BENCH_hotpath.json",
        help="output JSON path (default BENCH_hotpath.json)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="previous BENCH_hotpath.json to compute speedups against",
    )
    parser.add_argument(
        "--speedup-floor", type=float, default=None,
        help="fail (exit 1) if speedup vs --baseline falls below this"
        " ratio (CI noise floor, not an exact gate)",
    )
    args = parser.parse_args(argv)

    results = []
    for spec in hotpath_specs(args.quick):
        entry = measure(spec, max(1, args.repeat))
        print(
            f"{entry['label']:48s} {entry['wall_s']*1000:9.1f} ms"
            f" {entry['events']:8d} events"
            f" {entry['events_per_s']:12.0f} ev/s"
        )
        results.append(entry)

    total_events = sum(r["events"] for r in results)
    total_wall = sum(r["wall_s"] for r in results)
    aggregate = round(total_events / total_wall, 1)
    print(
        f"{'TOTAL':48s} {total_wall*1000:9.1f} ms"
        f" {total_events:8d} events {aggregate:12.0f} ev/s"
    )

    batch_specs = campaign_batch_specs(args.quick)
    campaign = measure_campaign_batch(batch_specs, max(1, args.repeat))
    print(
        f"{campaign['label']:48s} {campaign['wall_s']*1000:9.1f} ms"
        f" {campaign['events']:8d} events"
        f" {campaign['events_per_s']:12.0f} ev/s"
        f"  (batch {campaign['batch_speedup']:.2f}x vs serial"
        f" {campaign['serial_wall_s']*1000:.1f} ms)"
    )

    summary = {
        "bench": "hotpath",
        "quick": args.quick,
        "repeat": args.repeat,
        "python": platform.python_version(),
        "specs": results,
        # Campaign throughput is tracked separately: trial setup
        # dominates its wall clock, so folding it into ``total`` would
        # skew the events/s aggregate the baseline comparison gates on.
        "campaign_batch": campaign,
        "total": {
            "wall_s": round(total_wall, 6),
            "events": total_events,
            "events_per_s": aggregate,
        },
        "provenance": sweep_provenance(
            list(hotpath_specs(args.quick)) + list(batch_specs)
        ),
    }

    if args.baseline:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        base_by_label = {r["label"]: r for r in baseline.get("specs", [])}
        speedups = {}
        for entry in results:
            base = base_by_label.get(entry["label"])
            if base and base["events_per_s"] > 0:
                speedups[entry["label"]] = round(
                    entry["events_per_s"] / base["events_per_s"], 2
                )
        summary["baseline"] = {
            "python": baseline.get("python"),
            "total": baseline.get("total"),
            "specs": baseline.get("specs"),
        }
        base_total = baseline.get("total", {}).get("events_per_s")
        if base_total:
            summary["speedup"] = {
                "total": round(aggregate / base_total, 2),
                "per_spec": speedups,
            }
            print(f"speedup vs baseline: {summary['speedup']['total']:.2f}x")

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")

    if args.speedup_floor is not None:
        ratio = summary.get("speedup", {}).get("total")
        if ratio is None:
            print("--speedup-floor given but no --baseline speedup computed")
            return 1
        if ratio < args.speedup_floor:
            print(
                f"FAIL: speedup {ratio:.2f}x below floor"
                f" {args.speedup_floor:.2f}x"
            )
            return 1
        print(
            f"speedup {ratio:.2f}x clears floor {args.speedup_floor:.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
