"""Table 3 — implementation-cost comparison of the declustering schemes.

Columns reproduced: mapping table size (entries), translation time
(measured here with pytest-benchmark, per data-unit mapping), sparing
support, and layout period.  Expected shape:

- Parity Declustering stores the design table (n(n-1)/(k-1) entries);
- DATUM and PRIME are tableless ("few arithmetic operations");
- PDDL stores p*n permutation entries and translates with "very few
  arithmetic operations & vector lookup" — the fastest declustered
  mapping;
- only PDDL provides sparing.
"""

import pytest

from repro.experiments.config import paper_layout
from repro.experiments.report import render_table
from repro.experiments.table3 import table3_rows

SCHEMES = ("parity-declustering", "datum", "prime", "pddl")


@pytest.mark.parametrize("scheme", SCHEMES)
def test_table3_translation_time(benchmark, scheme):
    layout = paper_layout(scheme)
    total = layout.data_units_per_period

    def translate_block():
        for unit in range(0, total, max(1, total // 128)):
            layout.data_unit_address(unit)

    benchmark(translate_block)


def test_table3_summary(benchmark):
    rows = benchmark.pedantic(
        table3_rows, kwargs=dict(iterations=50_000), rounds=1, iterations=1
    )

    print()
    print("Table 3: scheme comparison")
    print(
        render_table(
            ["scheme", "table entries", "sparing", "period (rows)",
             "translate ns/unit"],
            [
                [
                    row.scheme,
                    row.table_entries,
                    "yes" if row.sparing else "no",
                    row.period_rows if row.period_rows else "expected only",
                    f"{row.translation_ns:.0f}",
                ]
                for row in rows.values()
            ],
        )
    )

    assert rows["parity-declustering"].table_entries == 52  # n(n-1)/(k-1)
    assert rows["datum"].table_entries == 0
    assert rows["prime"].table_entries == 0
    assert rows["pddl"].table_entries == 13  # p * n
    assert rows["pddl"].sparing
    assert not rows["datum"].sparing
    assert not rows["prime"].sparing
    assert not rows["parity-declustering"].sparing
    assert rows["pseudo-random"].period_rows is None

    # PDDL's translation ties the cheapest declustered mappings (25%
    # tolerance absorbs interpreter timing noise; the precise per-scheme
    # ns come from the dedicated test_table3_translation_time benchmarks).
    pddl_ns = rows["pddl"].translation_ns
    assert pddl_ns <= rows["datum"].translation_ns * 1.25
    assert pddl_ns <= rows["prime"].translation_ns * 1.25

    # Periods: Parity Declustering k(n-1)/(k-1); PDDL p*n.
    assert rows["parity-declustering"].period_rows == 16
    assert rows["pddl"].period_rows == 13
