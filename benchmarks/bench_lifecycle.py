"""Reconstruction under load — the full lifecycle in one simulation.

Where the per-mode figure benchmarks (5/6/8/9/18) measure each regime as
a separate steady-state run, this benchmark runs the paper's story end
to end: a 13-disk array under closed-loop load suffers a scripted
failure, dwells degraded, rebuilds under continuing traffic, and settles
into the post-reconstruction regime.  It prints per-regime latency
tables and the rebuild-duration-vs-offered-load curve for PDDL
(distributed sparing) against parity declustering (replacement-disk
rebuild), and checks the orderings the paper predicts.
"""

from repro.runner import lifecycle_sweep_specs, rebuild_load_curves

from benchmarks._support import bench_runner

LAYOUTS = ("pddl", "parity-declustering")


def test_lifecycle_rebuild_under_load(benchmark, bench_scale):
    clients = (1, 4, 10)
    specs = lifecycle_sweep_specs(
        LAYOUTS,
        clients,
        size_kb=24,
        fault_time_ms=500.0,
        degraded_dwell_ms=500.0,
        rebuild_rows=26 * bench_scale,
        post_samples=60 * bench_scale,
        max_samples=3000 * bench_scale,
    )
    runner = bench_runner()

    report = benchmark.pedantic(
        lambda: runner.run(specs), rounds=1, iterations=1
    )

    for record in report.records:
        life = record["lifecycle"]
        print()
        print(
            f"lifecycle: {life['layout']}, {life['clients']} clients,"
            f" rebuild {life['rebuild_duration_ms']:.0f} ms"
        )
        for mode, mean in life["mode_means_ms"].items():
            count = record["histograms"][mode]["count"]
            print(f"  {mode:20s} n={count:<5d} mean={mean:8.2f} ms")

    curves = rebuild_load_curves(report.records)
    print()
    for layout, curve in sorted(curves.items()):
        rendered = ", ".join(f"{c} cl: {ms:.0f} ms" for c, ms in curve)
        print(f"rebuild vs load [{layout}]: {rendered}")

    for record in report.records:
        life = record["lifecycle"]
        assert life["complete"], life
        assert [mode for mode, _ in life["transitions"]] == [
            "fault-free",
            "degraded",
            "reconstruction",
            "post-reconstruction",
        ]

    # Rebuild slows as offered load grows: the sweep competes with
    # clients for the same spindles.
    for layout, curve in curves.items():
        assert curve[-1][1] > curve[0][1], (layout, curve)

    # At the heaviest load, reconstruction-mode reads are slower than
    # fault-free reads for every layout (on-the-fly reconstruction
    # fans out to k-1 survivors).
    for record in report.records:
        life = record["lifecycle"]
        if life["clients"] != clients[-1]:
            continue
        means = life["mode_means_ms"]
        assert means["reconstruction"] > means["fault-free"], life
