"""Figure 3 — Disk working set sizes.

Regenerates the figure's full grid: five layouts x six access sizes x
{ffread, ffwrite, f1read, f1write}, computed exactly by averaging over
every start offset of one layout pattern.  Expected shape (paper §4):

- RAID-5 maximal everywhere, saturating first;
- DATUM smallest throughout;
- PDDL above Parity Declustering below ~120 KB and below it above;
- Parity Declustering, DATUM, PDDL never reach 13 for any read size.
"""

from repro.experiments.workingset import FIGURE3_SIZES_KB, figure3_table
from repro.experiments.report import render_working_set_table


def test_figure3_working_sets(benchmark):
    table = benchmark.pedantic(figure3_table, rounds=1, iterations=1)

    print()
    print("Figure 3: disk working set sizes (mean disks touched)")
    print(render_working_set_table(table, FIGURE3_SIZES_KB))

    def dws(name, size, cond="ffread"):
        return table[(name, size, cond)]

    # RAID-5 satisfies maximal parallelism optimally.
    for size in FIGURE3_SIZES_KB:
        assert dws("raid5", size) == min(13, size // 8)

    # Small-access ordering (sizes up to 120 KB):
    for size in (48, 96):
        assert dws("datum", size) <= dws("parity-declustering", size)
        assert dws("parity-declustering", size) <= dws("pddl", size)
        assert dws("pddl", size) <= dws("prime", size)
        assert dws("prime", size) <= dws("raid5", size)

    # The PDDL / Parity Declustering switch above 120 KB:
    for size in (144, 192, 240):
        assert dws("pddl", size) <= dws("parity-declustering", size)

    # Declustered layouts never reach 13 for any read size in the figure.
    for size in FIGURE3_SIZES_KB:
        for name in ("datum", "parity-declustering", "pddl"):
            assert dws(name, size) < 13.0

    # Degraded RAID-5 reads fan out hard (the rationale for declustering);
    # PDDL's stay essentially flat (lost units reconstruct from disks the
    # access mostly already touches).
    assert dws("raid5", 48, "f1read") > dws("raid5", 48, "ffread")
    assert abs(dws("pddl", 96, "f1read") - dws("pddl", 96, "ffread")) < 0.5
    assert dws("raid5", 48, "f1write") >= dws("raid5", 48, "ffwrite")
