"""Figure 14 — 336 KB accesses: all four type/mode combinations.

The paper's largest access size.  Expected shape: PDDL and DATUM at or
near the front for both reads and writes under load ("PDDL expeditiously
carries out its tasks" for very large accesses — §5 links this to goal #8
super-stripe behaviour), with Parity Declustering trailing on writes.
"""

from repro.array.raidops import ArrayMode

from benchmarks._support import final_response, print_panel, run_panel


def test_figure14_336kb_accesses(benchmark, bench_samples):
    clients = (1, 10, 25)

    def run_all():
        out = {}
        for is_write, mode in (
            (False, ArrayMode.FAULT_FREE),
            (True, ArrayMode.FAULT_FREE),
            (False, ArrayMode.DEGRADED),
            (True, ArrayMode.DEGRADED),
        ):
            curves = run_panel(336, is_write, clients, bench_samples, mode=mode)
            kind = "writes" if is_write else "reads"
            print_panel(f"Figure 14: 336KB {kind}, {mode.value}", curves)
            out[(is_write, mode)] = curves
        return out

    panels = benchmark.pedantic(run_all, rounds=1, iterations=1)

    ff_reads = panels[(False, ArrayMode.FAULT_FREE)]
    finals = {n: final_response(ff_reads, n) for n in ff_reads}
    ranked = sorted(finals, key=finals.get)
    # Heavy-load very-large reads: DATUM and PDDL in the top three.
    assert "datum" in ranked[:3]
    assert "pddl" in ranked[:3]

    ff_writes = panels[(True, ArrayMode.FAULT_FREE)]
    pd = final_response(ff_writes, "parity-declustering")
    assert final_response(ff_writes, "pddl") <= pd * 1.05

    # Degraded writes stay no worse than fault-free for PDDL.
    f1_writes = panels[(True, ArrayMode.DEGRADED)]
    assert final_response(f1_writes, "pddl") <= (
        final_response(ff_writes, "pddl") * 1.15
    )
