"""Figure 17 — the n = 55, stripe-width-6 pair of base permutations.

Verifies the paper's published pair is jointly satisfactory (each alone is
only *almost* satisfactory), builds the 110-row layout, and times the
reconstruction-tally computation that the search inner loop runs.
"""

from repro.core import tables
from repro.core.layout import PDDLLayout
from repro.core.reconstruction import rebuild_read_tally


def test_figure17_n55_pair(benchmark):
    group = tables.published_group(55, 6)
    assert group.p == 2

    tally = benchmark(lambda: group.combined_tally(0))

    # Jointly satisfactory: every survivor reads exactly p*(k-1) = 10.
    assert set(tally.values()) == {10}
    # Individually only almost satisfactory.
    for perm in group.permutations:
        assert not perm.is_satisfactory()
        assert perm.tally_deviation() <= 2

    layout = PDDLLayout(group)
    layout.validate()
    assert layout.period == 110  # two developed 55-row patterns

    print()
    print("Figure 17: n=55, k=6, g=9 published pair")
    print(f"  combined reconstruction tally: uniform at {tally[1]}")
    for i, perm in enumerate(group.permutations):
        t = perm.reconstruction_read_tally()
        print(
            f"  permutation {i}: solo tally range"
            f" [{min(t.values())}, {max(t.values())}]"
        )

    # The generic planner agrees with the permutation-level tally.
    plan_tally = rebuild_read_tally(layout, 0)
    assert set(plan_tally.values()) == {10}
