"""Table 1 — satisfactory base permutations for k = 5..10, g = 1..10.

Reruns the paper's methodology: Bose for prime n, the GF(2^m) construction
for powers of two, and hill-climbing search for the rest.  Prime cells
must produce 1 (they always do — the construction is a theorem).  For
composite cells we print our group size next to the paper's; search is
stochastic and budget-bound, so cells may come out '?' where the paper
found a group (and occasionally vice versa).

The default budget solves the small-n region; REPRO_BENCH_SCALE grows
the search budget for the large composite cells.  Cells are independent
searches, so the grid fans out across the :mod:`repro.runner` worker
pool (``REPRO_BENCH_WORKERS``) and completed cells memoize under
``REPRO_BENCH_CACHE``.
"""

import os

from repro.core.tables import PAPER_TABLE1
from repro.experiments.report import render_table
from repro.gf.prime import is_prime
from repro.runner import cells_from_records, table1_specs

from benchmarks._support import bench_runner


def _run_grid(widths, stripe_counts, restarts, max_steps):
    specs = table1_specs(
        widths, stripe_counts, restarts=restarts, max_steps=max_steps,
        p_max=3,
    )
    return cells_from_records(bench_runner().run(specs).records)


def test_table1_base_permutation_search(benchmark, bench_scale):
    full = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
    widths = range(5, 11)
    stripe_counts = range(1, 11) if full else range(1, 6)

    cells = benchmark.pedantic(
        _run_grid,
        kwargs=dict(
            widths=widths,
            stripe_counts=stripe_counts,
            restarts=8 * bench_scale,
            max_steps=1500 * bench_scale,
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print("Table 1: number of satisfactory base permutations (ours | paper)")
    rows = []
    for g in stripe_counts:
        row = [f"g={g}"]
        for k in widths:
            cell = cells[(k, g)]
            paper = PAPER_TABLE1.get((k, g))
            paper_str = "?" if paper is None else str(paper)
            row.append(f"{cell.rendered()}|{paper_str}")
        rows.append(row)
    print(render_table(["", *[f"k={k}" for k in widths]], rows))

    # Prime cells are a theorem: always solitary, always agreeing with the
    # paper.
    for (k, g), cell in cells.items():
        if is_prime(g * k + 1):
            assert cell.group_size == 1, (k, g)
            assert cell.method in ("bose", "gf2")
            if PAPER_TABLE1.get((k, g)) is not None:
                assert PAPER_TABLE1[(k, g)] == 1

    # The searched cells that did resolve never need more permutations
    # than a small group.
    for cell in cells.values():
        if cell.group_size is not None:
            assert 1 <= cell.group_size <= 3
