"""Figure 16 — Degraded write: seek and no-switch counts.

Expected shape (paper appendix): declustered layouts do *less* physical
work than fault-free (the failed disk cannot be written; one disk's worth
of writes disappears), while RAID-5's small accesses are forced into
large-write form with extra reads.
"""

from repro.array.raidops import ArrayMode

from benchmarks._support import LAYOUTS, print_seek_panel


def test_figure16_degraded_write_seeks(
    benchmark, bench_seek_sizes_kb, bench_samples
):
    mixes = benchmark.pedantic(
        print_seek_panel,
        args=(
            "Figure 16: degraded write seek/no-switch counts per access",
            LAYOUTS,
            bench_seek_sizes_kb,
            True,
            ArrayMode.DEGRADED,
            bench_samples,
        ),
        rounds=1,
        iterations=1,
    )

    from repro.experiments.seeks import run_seek_mix

    clean = run_seek_mix(
        LAYOUTS,
        bench_seek_sizes_kb,
        True,
        mode=ArrayMode.FAULT_FREE,
        samples_per_point=bench_samples,
    )

    # Declustered layouts: degraded writes at large sizes do no more work.
    size = bench_seek_sizes_kb[-1]
    for name in ("pddl", "datum", "prime", "parity-declustering"):
        assert mixes[(name, size)].total <= clean[(name, size)].total * 1.05

    # RAID-5 at small sizes: a stripe that lost a *written* unit is forced
    # into large-write form, reading the k-1-m untouched units — far more
    # than the small write's m+1 pre-reads when m is small.  (At ~half a
    # stripe the two forms cost the same, so the paper notes the effect
    # "is less pronounced for larger access sizes".)
    small = bench_seek_sizes_kb[0]
    assert (
        mixes[("raid5", small)].total
        > clean[("raid5", small)].total * 0.99
    )
