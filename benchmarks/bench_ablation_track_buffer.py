"""Ablation — drive track buffer (beyond the paper's drive model).

The paper's simulator models no drive cache.  Contemporary drives shipped
segmented read buffers; this bench measures what one would have changed:
sequential and small-access read streams profit from track residency,
while the paper's uniform-random workload barely notices.
"""

import random
from functools import partial

from repro.array.controller import ArrayController
from repro.disk.hp2247 import make_hp2247
from repro.experiments.config import paper_layout
from repro.experiments.report import render_table
from repro.sim.engine import SimulationEngine
from repro.stats.summary import SummaryStats
from repro.workload.client import ClosedLoopClient
from repro.workload.generators import SequentialGenerator, UniformGenerator
from repro.workload.spec import AccessSpec


def _run(track_buffer, sequential, samples, clients=4, seed=0):
    engine = SimulationEngine()
    controller = ArrayController(
        engine,
        paper_layout("pddl"),
        drive_factory=partial(make_hp2247, track_buffer=track_buffer),
    )
    stats = SummaryStats()

    def on_response(client, access, ms):
        stats.push(ms)
        if stats.count >= samples:
            engine.stop()
            return False
        return True

    spec = AccessSpec(24, False)
    for c in range(clients):
        if sequential:
            gen = SequentialGenerator(
                controller.addressable_data_units, 3,
                start=c * 50_000,
            )
        else:
            gen = UniformGenerator(
                controller.addressable_data_units, 3,
                random.Random(f"{seed}/{c}"),
            )
        ClosedLoopClient(c, controller, gen, spec, on_response).start()
    engine.run()
    hits = sum(s.drive.buffer_hits for s in controller.servers)
    return stats.mean, hits


def test_ablation_track_buffer(benchmark, bench_samples):
    def run_all():
        return {
            ("uniform", False): _run(False, False, bench_samples),
            ("uniform", True): _run(True, False, bench_samples),
            ("sequential", False): _run(False, True, bench_samples),
            ("sequential", True): _run(True, True, bench_samples),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    print("Ablation: drive track buffer (PDDL, 24KB reads, 4 clients)")
    print(
        render_table(
            ["workload", "buffer", "mean ms", "buffer hits"],
            [
                [wl, "on" if buf else "off", f"{mean:.2f}", hits]
                for (wl, buf), (mean, hits) in results.items()
            ],
        )
    )

    # Sequential streams revisit tracks; the buffer must register hits and
    # help (or at least not hurt).
    seq_off = results[("sequential", False)]
    seq_on = results[("sequential", True)]
    assert seq_on[1] > 0
    assert seq_on[0] <= seq_off[0] * 1.02
    # Uniform-random traffic sees few hits — the paper's workload choice
    # makes the missing cache model immaterial.
    uni_on = results[("uniform", True)]
    assert uni_on[1] <= seq_on[1]
