"""Nemesis fault-composition campaign on the 13-disk PDDL array.

Runs a seeded sweep of composed-fault trials: each trial draws a legal
:class:`~repro.faults.nemesis.NemesisSchedule` (disk failures, crashes,
latent-sector-error bursts, transient I/O storms, scrub-off windows)
and replays it against a journaled, scrubbed array with the integrity
oracle armed.  Trials classify as survived, data-loss-legitimate, or
SILENT_CORRUPTION — the last is a hard failure, since every loss the
simulator admits must be one the redundancy math actually allows.
"""

from repro.experiments.nemesistrial import nemesis_specs, summarize_nemesis
from repro.experiments.report import render_table

from benchmarks._support import bench_runner

DISKS = 13
ROWS = 26


def test_nemesis_composed_faults_pddl(benchmark, bench_scale):
    trials = 50 * bench_scale
    specs = nemesis_specs(
        layout="pddl",
        trials=trials,
        disks=DISKS,
        seed=0,
        rows=ROWS,
    )
    runner = bench_runner()

    report = benchmark.pedantic(
        lambda: runner.run(specs), rounds=1, iterations=1
    )

    records = [r["nemesis_trial"] for r in report.records]
    summary = summarize_nemesis(records)

    applied = ", ".join(
        f"{kind} x{count}"
        for kind, count in sorted(summary["events_applied"].items())
    )
    print()
    print(f"Nemesis campaign: pddl, {DISKS} disks, {trials} trials")
    print(
        render_table(
            ["metric", "value"],
            [
                ["survived", summary["survived"]],
                ["data loss (legitimate)", summary["data_loss"]],
                ["SILENT CORRUPTION", summary["silent_corruption"]],
                ["faults applied", applied],
                ["crashes ridden out", summary["crashes"]],
                ["write-hole stripes resynced",
                 summary["write_hole_stripes"]],
                ["mean resync (ms)", f"{summary['mean_resync_ms']:.2f}"],
                ["rebuilds completed", summary["completed_rebuilds"]],
                ["lost units (total)", summary["lost_units_total"]],
            ],
        )
    )

    # Every trial reached a terminal classification.
    assert len(records) == trials
    assert summary["trials"] == trials
    # The hard gate: no trial may lose data the schedule cannot justify.
    assert summary["silent_corruption"] == 0, summary["failing_trials"]
    assert summary["corruption_events"] == 0
    # The campaign actually exercises the composition space.
    assert summary["events_applied"].get("disk-failure", 0) >= trials
    assert summary["crashes"] > 0
    # Legitimate double-fault losses occur at this envelope.
    assert summary["data_loss"] > 0
    assert summary["survived"] > 0
    for record in records:
        if record["classification"] == "data_loss":
            assert record["loss_reason"], record
