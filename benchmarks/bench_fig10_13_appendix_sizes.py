"""Figures 10-13 — Appendix access sizes (24..288 KB), reads and writes,
fault-free and degraded.

The appendix panels fill in the sizes between the body figures; their
expected shapes are identical in kind: light-load order PRIME/RAID-5 >
PDDL > Parity Declustering > DATUM for reads, crossover to DATUM/PDDL
under heavy load, and declustered writes beating Parity Declustering.
"""

from repro.array.raidops import ArrayMode

from benchmarks._support import (
    final_response,
    first_response,
    run_panel,
    print_panel,
)

APPENDIX_SIZES_KB = (24, 72, 120, 168, 216, 288)


def _subset(full: bool):
    return APPENDIX_SIZES_KB if full else (24, 120, 288)


def test_figures10_to_13_appendix_sizes(benchmark, bench_samples):
    import os

    sizes = _subset(os.environ.get("REPRO_BENCH_FULL", "0") == "1")
    clients = (1, 25)

    def run_all():
        out = {}
        for size in sizes:
            for is_write, mode, figure in (
                (False, ArrayMode.FAULT_FREE, "Figure 10"),
                (True, ArrayMode.FAULT_FREE, "Figure 11"),
                (False, ArrayMode.DEGRADED, "Figure 12"),
                (True, ArrayMode.DEGRADED, "Figure 13"),
            ):
                curves = run_panel(
                    size, is_write, clients, bench_samples, mode=mode
                )
                kind = "writes" if is_write else "reads"
                print_panel(
                    f"{figure}: {size}KB {kind}, {mode.value}", curves
                )
                out[(size, is_write, mode)] = curves
        return out

    panels = benchmark.pedantic(run_all, rounds=1, iterations=1)

    for size in sizes:
        if size < 48:
            continue
        ff_reads = panels[(size, False, ArrayMode.FAULT_FREE)]
        # Light load: PRIME leads DATUM.
        assert first_response(ff_reads, "prime") < first_response(
            ff_reads, "datum"
        )
        # Heavy load: DATUM within 10% of the best.
        finals = {n: final_response(ff_reads, n) for n in ff_reads}
        assert finals["datum"] <= min(finals.values()) * 1.10

        ff_writes = panels[(size, True, ArrayMode.FAULT_FREE)]
        # Declustered writes beat Parity Declustering as size grows.
        if size >= 120:
            pd = final_response(ff_writes, "parity-declustering")
            assert final_response(ff_writes, "pddl") <= pd * 1.10
